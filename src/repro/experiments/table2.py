"""Experiment E4 — Table II: synergy between GBO and noise-aware training.

Methods compared at every noise level (paper Table II):

* ``Baseline`` — pre-trained weights, 8-pulse encoding;
* ``NIA`` — weights fine-tuned with injected crossbar noise, 8 pulses;
* ``GBO`` — pre-trained weights, GBO-optimised pulse schedule;
* ``NIA+GBO`` — GBO schedule learned on top of the NIA-fine-tuned weights;
* ``NIA+PLA`` — NIA weights with a uniform 10-pulse schedule.

The expected shape (paper): NIA alone recovers most of the loss, GBO alone
helps less than NIA at high noise, and NIA+GBO is the best configuration at
every noise level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.gbo import GBOConfig, GBOTrainer
from repro.core.nia import NIAConfig, NIATrainer
from repro.core.schedule import PulseSchedule
from repro.core.search_space import PulseScalingSpace
from repro.experiments.common import ExperimentBundle, get_pretrained_bundle
from repro.experiments.profiles import ExperimentProfile
from repro.training.evaluate import noisy_accuracy
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.table2")

#: Paper-reported Table II values: (method, paper_sigma) -> (accuracy %, avg pulses).
PAPER_TABLE2: Dict[Tuple[str, float], Tuple[float, float]] = {
    ("Baseline", 10.0): (83.94, 8.0),
    ("NIA", 10.0): (88.35, 8.0),
    ("GBO", 10.0): (86.36, 9.71),
    ("NIA+GBO", 10.0): (88.93, 9.71),
    ("NIA+PLA", 10.0): (88.91, 10.0),
    ("Baseline", 15.0): (62.27, 8.0),
    ("NIA", 15.0): (84.84, 8.0),
    ("GBO", 15.0): (76.35, 10.21),
    ("NIA+GBO", 15.0): (86.45, 10.24),
    ("NIA+PLA", 15.0): (85.17, 10.0),
    ("Baseline", 20.0): (31.46, 8.0),
    ("NIA", 20.0): (78.78, 8.0),
    ("GBO", 20.0): (46.33, 10.28),
    ("NIA+GBO", 20.0): (81.33, 10.28),
    ("NIA+PLA", 20.0): (80.29, 10.0),
}


@dataclass
class Table2Row:
    """One row of the reproduced Table II."""

    method: str
    sigma: float
    paper_sigma: Optional[float]
    accuracy: float
    average_pulses: float
    schedule: List[int]
    paper_accuracy: Optional[float] = None
    paper_average_pulses: Optional[float] = None


@dataclass
class Table2Result:
    """All rows of the reproduced Table II."""

    clean_accuracy: float
    rows: List[Table2Row] = field(default_factory=list)

    def row(self, method: str, sigma: float) -> Table2Row:
        """Look up a single row by method name and noise level."""
        for candidate in self.rows:
            if candidate.method == method and candidate.sigma == sigma:
                return candidate
        raise KeyError(f"no row for method={method!r} sigma={sigma}")

    def rows_for_sigma(self, sigma: float) -> List[Table2Row]:
        """Rows belonging to one noise level."""
        return [row for row in self.rows if row.sigma == sigma]

    def format_table(self) -> str:
        """Human-readable rendering mirroring the paper's Table II layout."""
        header = (
            f"{'method':<10} {'sigma':>6} {'avg pulses':>11} {'accuracy %':>11} "
            f"{'paper acc %':>12}"
        )
        lines = [f"clean accuracy: {self.clean_accuracy:.2f}%", header]
        for row in self.rows:
            paper_acc = f"{row.paper_accuracy:.2f}" if row.paper_accuracy is not None else "-"
            lines.append(
                f"{row.method:<10} {row.sigma:>6.1f} {row.average_pulses:>11.2f} "
                f"{row.accuracy:>11.2f} {paper_acc:>12}"
            )
        return "\n".join(lines)


def _paper_reference(method: str, paper_sigma: Optional[float]) -> Tuple[Optional[float], Optional[float]]:
    if paper_sigma is None:
        return None, None
    entry = PAPER_TABLE2.get((method, paper_sigma))
    if entry is None:
        return None, None
    return entry


def run_table2(
    profile: Optional[ExperimentProfile] = None,
    bundle: Optional[ExperimentBundle] = None,
    sigmas: Optional[Sequence[float]] = None,
    nia_pla_pulses: int = 10,
    gbo_gamma: Optional[float] = None,
    gbo_engine=None,
) -> Table2Result:
    """Reproduce Table II on the profile's pre-trained model.

    Every method starts from the same pre-trained weights (restored between
    methods), mirroring the paper's protocol.

    Parameters
    ----------
    gbo_gamma:
        Latency weight used for the GBO and NIA+GBO rows.  Defaults to a
        fifth of the profile's ``gamma_long``: after NIA fine-tuning the loss
        is far less sensitive to the injected noise, so a gamma tuned for the
        pre-trained model would let the latency term dominate and collapse
        the schedule to the shortest pulses.  The paper's Table II likewise
        reports GBO at its accuracy-leaning operating point.
    gbo_engine:
        Simulation engine (instance or registry name) for the GBO and
        NIA+GBO rows; ``None`` keeps the profile's backend.
    """
    bundle = bundle or get_pretrained_bundle(profile)
    profile = bundle.profile
    model = bundle.model
    sigmas = list(sigmas if sigmas is not None else profile.sigmas)
    num_layers = model.num_encoded_layers()
    space = PulseScalingSpace(base_pulses=profile.base_pulses)
    pretrained_state = bundle.pretrained_state()
    gbo_gamma = gbo_gamma if gbo_gamma is not None else profile.gamma_long * 0.2

    result = Table2Result(clean_accuracy=bundle.clean_accuracy)

    def evaluate(schedule: PulseSchedule, sigma: float) -> float:
        return noisy_accuracy(
            model,
            bundle.test_loader,
            sigma=sigma,
            schedule=schedule,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
            num_repeats=profile.eval_repeats,
        )

    def run_gbo(sigma: float) -> "PulseSchedule":
        model.set_noise(sigma, relative_to_fan_in=profile.noise_relative_to_fan_in)
        trainer = GBOTrainer(
            model,
            GBOConfig(
                space=space,
                gamma=gbo_gamma,
                learning_rate=profile.gbo_lr,
                epochs=profile.gbo_epochs,
            ),
            engine=gbo_engine,
        )
        gbo_result = trainer.train(bundle.gbo_loader)
        model.requires_grad_(True)
        return gbo_result.schedule

    def add_row(method: str, sigma: float, paper_sigma, schedule: PulseSchedule, accuracy: float) -> None:
        paper_accuracy, paper_pulses = _paper_reference(method, paper_sigma)
        result.rows.append(
            Table2Row(
                method=method,
                sigma=sigma,
                paper_sigma=paper_sigma,
                accuracy=accuracy,
                average_pulses=schedule.average_pulses,
                schedule=schedule.as_list(),
                paper_accuracy=paper_accuracy,
                paper_average_pulses=paper_pulses,
            )
        )
        LOGGER.info(
            "table2 sigma=%.2f %s: acc=%.2f%% avg_pulses=%.2f",
            sigma,
            method,
            accuracy,
            schedule.average_pulses,
        )

    baseline_schedule = PulseSchedule.uniform(num_layers, profile.base_pulses)
    nia_pla_schedule = PulseSchedule.uniform(num_layers, nia_pla_pulses)

    for sigma_index, sigma in enumerate(sigmas):
        paper_sigma = (
            profile.paper_sigmas[sigma_index]
            if sigma_index < len(profile.paper_sigmas)
            else None
        )

        # Baseline: pre-trained weights, 8 pulses everywhere.
        bundle.restore(pretrained_state)
        add_row("Baseline", sigma, paper_sigma, baseline_schedule, evaluate(baseline_schedule, sigma))

        # GBO on the pre-trained weights.
        bundle.restore(pretrained_state)
        gbo_schedule = run_gbo(sigma)
        add_row("GBO", sigma, paper_sigma, gbo_schedule, evaluate(gbo_schedule, sigma))

        # NIA fine-tuning (weights adapt to the injected noise).
        bundle.restore(pretrained_state)
        nia_config = NIAConfig(
            sigma=sigma,
            epochs=profile.nia_epochs,
            learning_rate=profile.nia_lr,
            pulses=profile.base_pulses,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
        )
        NIATrainer(model, nia_config).train(bundle.train_loader)
        nia_state = model.state_dict()
        add_row("NIA", sigma, paper_sigma, baseline_schedule, evaluate(baseline_schedule, sigma))

        # NIA + GBO: learn the schedule on top of the NIA weights.
        model.load_state_dict(nia_state)
        nia_gbo_schedule = run_gbo(sigma)
        add_row("NIA+GBO", sigma, paper_sigma, nia_gbo_schedule, evaluate(nia_gbo_schedule, sigma))

        # NIA + PLA: NIA weights with a uniform longer schedule.
        model.load_state_dict(nia_state)
        add_row("NIA+PLA", sigma, paper_sigma, nia_pla_schedule, evaluate(nia_pla_schedule, sigma))

    bundle.restore(pretrained_state)
    return result
