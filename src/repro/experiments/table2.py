"""Experiment E4 — Table II: synergy between GBO and noise-aware training.

Methods compared at every noise level (paper Table II):

* ``Baseline`` — pre-trained weights, 8-pulse encoding;
* ``NIA`` — weights fine-tuned with injected crossbar noise, 8 pulses;
* ``GBO`` — pre-trained weights, GBO-optimised pulse schedule;
* ``NIA+GBO`` — GBO schedule learned on top of the NIA-fine-tuned weights;
* ``NIA+PLA`` — NIA weights with a uniform 10-pulse schedule.

The expected shape (paper): NIA alone recovers most of the loss, GBO alone
helps less than NIA at high noise, and NIA+GBO is the best configuration at
every noise level.

Expressed as a grid on the scenario runner: one scenario per (method, sigma)
cell.  The NIA fine-tuning each sigma's three ``NIA*`` cells start from is a
shared *stage*: it is computed once in its own seeded RNG stream and cached
(in the result store's stage area, or in memory for one call), so the cells
stay independent — any of them can run first, in any process — while the
fine-tuning still happens only once per noise level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.nia import NIAConfig, NIATrainer
from repro.core.schedule import PulseSchedule
from repro.experiments.common import (
    ExperimentBundle,
    build_loaders,
    get_pretrained_bundle,
    profile_token,
)
from repro.experiments.profiles import ExperimentProfile
from repro.experiments.table1 import (
    _paper_sigma_for,
    grid_sigma_rank,
    resolve_driver_engines,
    run_gbo_stage,
)
from repro.sim import SimConfig, apply_config
from repro.training.evaluate import noisy_accuracy
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.table2")

#: Paper-reported Table II values: (method, paper_sigma) -> (accuracy %, avg pulses).
PAPER_TABLE2: Dict[Tuple[str, float], Tuple[float, float]] = {
    ("Baseline", 10.0): (83.94, 8.0),
    ("NIA", 10.0): (88.35, 8.0),
    ("GBO", 10.0): (86.36, 9.71),
    ("NIA+GBO", 10.0): (88.93, 9.71),
    ("NIA+PLA", 10.0): (88.91, 10.0),
    ("Baseline", 15.0): (62.27, 8.0),
    ("NIA", 15.0): (84.84, 8.0),
    ("GBO", 15.0): (76.35, 10.21),
    ("NIA+GBO", 15.0): (86.45, 10.24),
    ("NIA+PLA", 15.0): (85.17, 10.0),
    ("Baseline", 20.0): (31.46, 8.0),
    ("NIA", 20.0): (78.78, 8.0),
    ("GBO", 20.0): (46.33, 10.28),
    ("NIA+GBO", 20.0): (81.33, 10.28),
    ("NIA+PLA", 20.0): (80.29, 10.0),
}


@dataclass
class Table2Row:
    """One row of the reproduced Table II."""

    method: str
    sigma: float
    paper_sigma: Optional[float]
    accuracy: float
    average_pulses: float
    schedule: List[int]
    paper_accuracy: Optional[float] = None
    paper_average_pulses: Optional[float] = None


@dataclass
class Table2Result:
    """All rows of the reproduced Table II."""

    clean_accuracy: float
    rows: List[Table2Row] = field(default_factory=list)

    def row(self, method: str, sigma: float) -> Table2Row:
        """Look up a single row by method name and noise level."""
        for candidate in self.rows:
            if candidate.method == method and candidate.sigma == sigma:
                return candidate
        raise KeyError(f"no row for method={method!r} sigma={sigma}")

    def rows_for_sigma(self, sigma: float) -> List[Table2Row]:
        """Rows belonging to one noise level."""
        return [row for row in self.rows if row.sigma == sigma]

    def format_table(self) -> str:
        """Human-readable rendering mirroring the paper's Table II layout."""
        header = (
            f"{'method':<10} {'sigma':>6} {'avg pulses':>11} {'accuracy %':>11} "
            f"{'paper acc %':>12}"
        )
        lines = [f"clean accuracy: {self.clean_accuracy:.2f}%", header]
        for row in self.rows:
            paper_acc = f"{row.paper_accuracy:.2f}" if row.paper_accuracy is not None else "-"
            lines.append(
                f"{row.method:<10} {row.sigma:>6.1f} {row.average_pulses:>11.2f} "
                f"{row.accuracy:>11.2f} {paper_acc:>12}"
            )
        return "\n".join(lines)


def _paper_reference(method: str, paper_sigma: Optional[float]) -> Tuple[Optional[float], Optional[float]]:
    if paper_sigma is None:
        return None, None
    entry = PAPER_TABLE2.get((method, paper_sigma))
    if entry is None:
        return None, None
    return entry


#: Methods of the paper's Table II, in its row order.
TABLE2_METHODS = ("Baseline", "GBO", "NIA", "NIA+GBO", "NIA+PLA")


# ---------------------------------------------------------------------------
# Scenario grid
# ---------------------------------------------------------------------------
def table2_grid(
    profile: ExperimentProfile,
    sigmas: Optional[Sequence[float]] = None,
    nia_pla_pulses: int = 10,
    gbo_gamma: Optional[float] = None,
    engine=None,
    gbo_engine=None,
):
    """One scenario per Table II cell: (method, sigma)."""
    from repro.experiments.runner.spec import (
        ScenarioGrid,
        ScenarioSpec,
        engine_token,
        profile_axes,
    )

    gbo_engine = engine_token(gbo_engine)
    axes = profile_axes(profile, engine)
    sigmas = list(sigmas if sigmas is not None else profile.sigmas)
    # Default gamma: a fifth of the profile's gamma_long — after NIA
    # fine-tuning the loss is far less sensitive to the injected noise, so a
    # gamma tuned for the pre-trained model would let the latency term
    # dominate and collapse the schedule to the shortest pulses.  The paper's
    # Table II likewise reports GBO at its accuracy-leaning operating point.
    gamma = float(gbo_gamma) if gbo_gamma is not None else profile.gamma_long * 0.2
    specs = []
    for sigma in sigmas:
        for method in TABLE2_METHODS:
            uses_gbo = method in ("GBO", "NIA+GBO")
            specs.append(
                ScenarioSpec.create(
                    experiment="table2",
                    method=method,
                    sigma=sigma,
                    gamma=gamma if uses_gbo else None,
                    gbo_engine=gbo_engine if uses_gbo else None,
                    nia_pla_pulses=int(nia_pla_pulses),
                    **axes,
                )
            )
    return ScenarioGrid(name="table2", specs=tuple(specs))


def _nia_stage_state(ctx, model) -> Dict[str, Any]:
    """The NIA-fine-tuned weights for this scenario's noise level (cached).

    The stage runs in its own RNG stream, on its own fresh loaders and from
    the pre-trained snapshot, so every scenario that needs it computes the
    identical state regardless of order or process.  The captured state is
    limited to the pre-trained snapshot's keys so a model carrying leftover
    ``gbo_logits`` produces the same stage bytes as a fresh one.
    """
    profile = ctx.profile
    sigma = ctx.spec.sigma
    snapshot_keys = set(ctx.bundle.pretrained_snapshot)
    # The engine is part of the stage identity AND pinned during training:
    # the two engines consume the RNG stream differently for noisy reads, so
    # NIA weights trained under one engine are not the other's — and the
    # shared model's current pin is whatever the previous scenario left
    # (worker processes start from the profile default), which must never
    # leak into the stage.
    engine = ctx.engine_name()
    key = {
        "kind": "nia_state",
        "profile": profile_token(profile),
        "sigma": float(sigma),
        "epochs": profile.nia_epochs,
        "learning_rate": profile.nia_lr,
        "pulses": profile.base_pulses,
        "relative": profile.noise_relative_to_fan_in,
        "engine": engine,
    }

    def compute():
        ctx.bundle.restore_pretrained()
        model.requires_grad_(True)
        apply_config(model, SimConfig(engine=engine), profile)
        train_loader, _, _ = build_loaders(profile)
        nia_config = NIAConfig(
            sigma=sigma,
            epochs=profile.nia_epochs,
            learning_rate=profile.nia_lr,
            pulses=profile.base_pulses,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
        )
        NIATrainer(model, nia_config).train(train_loader)
        return {
            name: value
            for name, value in model.state_dict().items()
            if name in snapshot_keys
        }

    return ctx.stage_state(key, compute)


def execute_table2_scenario(ctx) -> Dict[str, Any]:
    """One Table II cell: (starting weights, schedule source) per method."""
    spec = ctx.spec
    profile = ctx.profile
    nia_state = _nia_stage_state(ctx, ctx.bundle.model) if "NIA" in spec.method else None

    model = ctx.model()
    if nia_state is not None:
        model.load_state_dict(nia_state, strict=False)

    num_layers = model.num_encoded_layers()
    pla_errors = None
    if spec.method in ("GBO", "NIA+GBO"):
        gbo_result = run_gbo_stage(ctx, model, spec.gamma, gbo_engine=spec.param("gbo_engine"))
        schedule = gbo_result.schedule
        pla_errors = gbo_result.pla_errors
    elif spec.method == "NIA+PLA":
        schedule = PulseSchedule.uniform(num_layers, int(spec.param("nia_pla_pulses", 10)))
    else:  # Baseline / NIA: the 8-pulse baseline encoding
        schedule = PulseSchedule.uniform(num_layers, profile.base_pulses)

    accuracy = noisy_accuracy(
        model,
        ctx.test_loader,
        sim=ctx.noisy_sim(pulses=schedule),
        num_repeats=profile.eval_repeats,
    )
    LOGGER.info(
        "table2 sigma=%.2f %s: acc=%.2f%% avg_pulses=%.2f",
        spec.sigma,
        spec.method,
        accuracy,
        schedule.average_pulses,
    )
    result = {
        "schedule": schedule.as_list(),
        "average_pulses": schedule.average_pulses,
        "accuracy": accuracy,
    }
    if pla_errors is not None:
        result["pla_errors"] = [float(e) for e in pla_errors]
    return result


def assemble_table2(
    grid, results: Mapping[str, Mapping[str, Any]], bundle: ExperimentBundle
) -> Table2Result:
    """Fold per-cell scenario results back into the paper's table layout."""
    from repro.experiments.runner.spec import grid_profile

    result = Table2Result(clean_accuracy=bundle.clean_accuracy)
    profile = grid_profile(grid, fallback=bundle)
    for spec in grid:
        row = results[spec.hash]
        paper_sigma = _paper_sigma_for(profile, grid_sigma_rank(grid, spec))
        paper_accuracy, paper_pulses = _paper_reference(spec.method, paper_sigma)
        result.rows.append(
            Table2Row(
                method=spec.method,
                sigma=spec.sigma,
                paper_sigma=paper_sigma,
                accuracy=row["accuracy"],
                average_pulses=row["average_pulses"],
                schedule=[int(p) for p in row["schedule"]],
                paper_accuracy=paper_accuracy,
                paper_average_pulses=paper_pulses,
            )
        )
    return result


def run_table2(
    profile: Optional[ExperimentProfile] = None,
    bundle: Optional[ExperimentBundle] = None,
    sigmas: Optional[Sequence[float]] = None,
    nia_pla_pulses: int = 10,
    gbo_gamma: Optional[float] = None,
    gbo_engine=None,
    engine=None,
    workers: int = 0,
    store=None,
    sim: Optional[SimConfig] = None,
    gbo_sim: Optional[SimConfig] = None,
) -> Table2Result:
    """Reproduce Table II on the profile's pre-trained model.

    Every method starts from the same pre-trained weights (each scenario
    restores the snapshot), mirroring the paper's protocol.

    Parameters
    ----------
    gbo_gamma:
        Latency weight used for the GBO and NIA+GBO rows.  Defaults to a
        fifth of the profile's ``gamma_long`` (see :func:`table2_grid`).
    sim:
        Engine pin for everything each scenario runs (the config may carry
        nothing beyond its engine — scenario mode/pulses/noise come from
        the grid); ``None`` follows the one engine-resolution rule.
    gbo_sim:
        Engine pin for the GBO training stage of the GBO and NIA+GBO rows;
        ``None`` keeps the scenario's engine.
    gbo_engine / engine:
        Deprecated: pass ``gbo_sim=`` / ``sim=`` instead (bit-identical).
    workers / store:
        Scenario-runner execution controls (see
        :func:`repro.experiments.runner.run_grid`).
    """
    from repro.experiments.runner.executor import run_grid

    engine, gbo_engine = resolve_driver_engines(engine, gbo_engine, sim, gbo_sim)
    bundle = bundle or get_pretrained_bundle(profile)
    profile = profile or bundle.profile
    grid = table2_grid(
        profile,
        sigmas=sigmas,
        nia_pla_pulses=nia_pla_pulses,
        gbo_gamma=gbo_gamma,
        engine=engine,
        gbo_engine=gbo_engine,
    )
    outcome = run_grid(grid, workers=workers, store=store, bundle=bundle)
    return assemble_table2(grid, outcome.results, bundle)
