"""Experiment drivers: one module per table/figure of the paper.

Every driver returns a plain dataclass (rows of numbers plus the matching
paper values where applicable) so the benchmark harness, the examples and
EXPERIMENTS.md can all render the same results.

All drivers are grids on the *scenario runner*
(:mod:`repro.experiments.runner`): one spec per (method, noise level,
gamma, ...) cell, executed serially (the bit-exact oracle), across a worker
pool, or resumed from the content-addressed result store.  The registry
(:mod:`repro.experiments.registry`) indexes every experiment and the
``python -m repro.experiments`` CLI drives it.

Profiles (``smoke`` / ``fast`` / ``paper``) control the scale of the
underlying model and dataset; see :mod:`repro.experiments.profiles`.
"""

from repro.experiments.profiles import ExperimentProfile, get_profile, PROFILES
from repro.experiments.common import (
    ExperimentBundle,
    get_pretrained_bundle,
    get_cache_dir,
    build_model,
    build_loaders,
)
from repro.experiments.fig1b import run_fig1b, Fig1bResult
from repro.experiments.fig2 import run_fig2, Fig2Result
from repro.experiments.table1 import run_table1, Table1Result, Table1Row
from repro.experiments.table2 import run_table2, Table2Result, Table2Row
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    describe_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentProfile",
    "get_profile",
    "PROFILES",
    "ExperimentBundle",
    "get_pretrained_bundle",
    "get_cache_dir",
    "build_model",
    "build_loaders",
    "run_fig1b",
    "Fig1bResult",
    "run_fig2",
    "Fig2Result",
    "run_table1",
    "Table1Result",
    "Table1Row",
    "run_table2",
    "Table2Result",
    "Table2Row",
    "EXPERIMENTS",
    "ExperimentSpec",
    "describe_experiments",
    "run_experiment",
]
