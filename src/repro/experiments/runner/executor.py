"""Grid execution: serial oracle, worker pool, and cached resume.

:func:`run_grid` is the single entry point every experiment driver, the
benchmark harness and the ``python -m repro.experiments`` CLI go through.

Execution modes
---------------
``workers <= 1`` (default)
    Scenarios run serially in-process.  This is the bit-exact oracle: every
    scenario reseeds from its spec hash and starts from the pre-trained
    snapshot, so the serial order is irrelevant to the results.

``workers > 1``
    Independent scenarios are sharded across a ``multiprocessing`` spawn
    pool.  Workers rebuild their bundles from the on-disk pre-train cache
    (the parent prepares it first) and execute scenarios with exactly the
    same per-scenario derived seeds, so the results are bit-identical to the
    serial oracle.  BLAS threading is pinned to one thread per worker to
    avoid oversubscription.

With a persistent :class:`~repro.experiments.runner.store.ResultStore`,
completed scenarios are skipped on re-run (resume); without one, a
per-call :class:`~repro.experiments.runner.store.MemoryStore` still shares
derived stages (e.g. NIA weights) between the scenarios of the call.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ensure_checkpoint_on_disk,
    get_pretrained_bundle,
    profile_token,
)
from repro.experiments.profiles import get_profile
from repro.experiments.runner.scenarios import execute_scenario, needs_bundle
from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec
from repro.experiments.runner.store import MemoryStore, ResultStore, jsonify_result
from repro.sim import SimConfig, apply_config
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.runner")

#: BLAS/thread environment pinned in worker processes so N workers do not
#: fight over the machine with N x num_threads BLAS pools.
_WORKER_THREAD_ENV = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


class GridExecutionError(RuntimeError):
    """One or more scenarios of a parallel grid run failed.

    Raised *after* every completed sibling's result has been persisted to
    the store, so a failing scenario can never throw away work other
    workers finished — a resumed run re-executes only the failures.
    ``failures`` maps each failed spec to the exception it raised.
    """

    def __init__(self, failures: Dict[ScenarioSpec, BaseException], completed: int):
        self.failures = failures
        self.completed = completed
        detail = "; ".join(
            f"{spec.label()}: {type(error).__name__}: {error}"
            for spec, error in failures.items()
        )
        super().__init__(
            f"{len(failures)} scenario(s) failed ({detail}); "
            f"{completed} completed sibling result(s) were persisted"
        )


@dataclass
class GridRunResult:
    """Outcome of one :func:`run_grid` call."""

    grid: ScenarioGrid
    results: Dict[str, Dict[str, Any]]  # spec hash -> scenario result
    executed: int = 0
    cached: int = 0
    workers: int = 0
    duration_s: float = 0.0
    per_scenario_s: Dict[str, float] = field(default_factory=dict)

    def result_for(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """The result of one member scenario (raises on a missing hash)."""
        return self.results[spec.hash]

    def in_grid_order(self) -> List[Tuple[ScenarioSpec, Dict[str, Any]]]:
        """(spec, result) pairs in the grid's declaration order."""
        return [(spec, self.results[spec.hash]) for spec in self.grid]


def _bundle_for(spec: ScenarioSpec, bundles: Dict[str, Any], explicit_bundle=None):
    """The pre-trained bundle a spec runs against (memoised per profile)."""
    if not needs_bundle(spec.experiment):
        return None
    profile = get_profile(spec.profile).with_overrides(**spec.override_dict())
    token = profile_token(profile)
    if explicit_bundle is not None and profile_token(explicit_bundle.profile) == token:
        return explicit_bundle
    if token not in bundles:
        bundles[token] = get_pretrained_bundle(profile)
    return bundles[token]


def execute_pending(
    spec: ScenarioSpec,
    stage_store,
    bundles: Optional[Dict[str, Any]] = None,
    explicit_bundle=None,
) -> Tuple[Dict[str, Any], float, Any]:
    """The one scenario-execution core every execution path calls.

    Resolves the spec's pre-trained bundle (memoised in ``bundles`` per
    profile token, so a caller draining many scenarios builds each bundle
    once), executes the scenario through
    :func:`~repro.experiments.runner.scenarios.execute_scenario` (which owns
    the determinism contract: per-spec derived seed, snapshot restore,
    fresh loaders) and returns ``(result, elapsed_s, bundle)``.

    Callers: the serial loop of :func:`run_grid`, the spawn-pool's
    :func:`_worker_run`, and :class:`repro.distributed.worker.GridWorker` —
    three schedulers, one execution semantics, which is what keeps
    serial == parallel == distributed bit-identical.  The returned bundle
    (``None`` for bundle-free experiments) lets schedulers restore shared
    model state when their drain finishes.
    """
    bundle = _bundle_for(spec, bundles if bundles is not None else {}, explicit_bundle)
    start = time.perf_counter()
    result = execute_scenario(spec, bundle=bundle, stage_store=stage_store)
    return result, time.perf_counter() - start, bundle


# ---------------------------------------------------------------------------
# Worker-pool plumbing (module level so the spawn pickler can find it)
# ---------------------------------------------------------------------------
def _worker_init(cache_dir: Optional[str], store_root: Optional[str]) -> None:
    """Bootstrap one spawned worker: activate the worker's own context.

    Every worker process owns a fresh :class:`repro.context.ExecutionContext`
    — its own dtype policy, default RNG, grad flag and bundle cache — so
    nothing a scenario mutates can leak into the parent or a sibling.  The
    worker's stage store rides on the context: with a persistent store,
    stages are shared across all workers via disk; without one, a
    process-local MemoryStore at least shares stages between the scenarios
    this worker executes (instead of recomputing them per scenario).
    """
    from repro.context import ExecutionContext, activate_context

    if cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    activate_context(
        ExecutionContext(
            stage_store=ResultStore(store_root) if store_root else MemoryStore(),
            name="runner-worker",
        )
    )


def _worker_run(payload: Dict[str, Any]) -> Tuple[str, Dict[str, Any], float]:
    from repro.context import current_context

    spec = ScenarioSpec.from_dict(payload)
    stage_store = current_context().stage_store
    if stage_store is None:
        stage_store = MemoryStore()
    result, elapsed, _ = execute_pending(spec, stage_store)
    return spec.hash, result, elapsed


def _worker_run_batch(
    payloads: Sequence[Dict[str, Any]],
) -> Tuple[List[str], List[Dict[str, Any]], float]:
    """Execute one stacked ``api_eval`` batch inside a worker process.

    Used by ``repro.serve``'s parallel dispatch: the whole compatible group
    ships to ONE worker, which runs it as a single stacked forward via
    :func:`repro.api.execute_api_eval_batch` (per-spec results bit-identical
    to individual execution, see there).
    """
    from repro.api import execute_api_eval_batch
    from repro.context import current_context

    specs = [ScenarioSpec.from_dict(payload) for payload in payloads]
    stage_store = current_context().stage_store
    if stage_store is None:
        stage_store = MemoryStore()
    profile = get_profile(specs[0].profile).with_overrides(**specs[0].override_dict())
    bundle = get_pretrained_bundle(profile)
    start = time.perf_counter()
    results = execute_api_eval_batch(specs, bundle=bundle, stage_store=stage_store)
    elapsed = time.perf_counter() - start
    return [spec.hash for spec in specs], results, elapsed


def _worker_ping() -> int:
    """No-op task used to force eager worker spawn (see spawn_worker_pool)."""
    return os.getpid()


def spawn_worker_pool(
    workers: int,
    store_root: Optional[str] = None,
    cache_dir: Optional[str] = None,
    warm: bool = True,
) -> ProcessPoolExecutor:
    """A long-lived spawn pool whose workers each own an execution context.

    The building block behind both :func:`run_grid`'s parallel mode and
    ``repro.serve``'s parallel request dispatch: ``workers`` spawned
    processes, each bootstrapped through :func:`_worker_init` (own
    :class:`~repro.context.ExecutionContext`, own stage store, shared
    on-disk caches) with BLAS pools pinned to one thread so N workers do
    not fight over the machine with N x num_threads BLAS pools.

    With ``warm=True`` (default) the pool spawns all its processes before
    returning, by submitting one ping per worker: ``ProcessPoolExecutor``
    otherwise spawns lazily at submit time, after this function restored
    the parent's BLAS environment — the pinning must be inherited at
    process creation.  Callers own the returned executor and must
    ``shutdown()`` it.
    """
    saved_env = {name: os.environ.get(name) for name in _WORKER_THREAD_ENV}
    for name in _WORKER_THREAD_ENV:
        os.environ[name] = "1"
    try:
        context = multiprocessing.get_context("spawn")
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(cache_dir, store_root),
        )
        if warm:
            # Each submit spawns a new process while the pool is below
            # max_workers, so N pings guarantee N workers exist — created
            # while the BLAS pinning above is still in the environment.
            for future in [pool.submit(_worker_ping) for _ in range(workers)]:
                future.result()
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return pool


def _run_parallel(
    pending: Sequence[ScenarioSpec],
    workers: int,
    store: Optional[ResultStore],
    outcome: GridRunResult,
) -> None:
    """Execute ``pending`` on a spawn pool, collecting into ``outcome``."""
    # Make sure every needed pre-trained checkpoint is on disk before any
    # worker starts, so workers never pre-train redundantly.
    bundles: Dict[str, Any] = {}
    for spec in pending:
        bundle = _bundle_for(spec, bundles)
        if bundle is not None:
            ensure_checkpoint_on_disk(bundle)

    store_root = store.root if isinstance(store, ResultStore) else None
    cache_dir = os.environ.get("REPRO_CACHE_DIR")

    by_hash = {spec.hash: spec for spec in pending}
    # spawn_worker_pool pins worker BLAS pools to one thread each and gives
    # every worker process its own ExecutionContext.  ProcessPoolExecutor
    # (rather than multiprocessing.Pool) so a worker dying at bootstrap
    # surfaces as BrokenProcessPool instead of the pool silently respawning
    # workers forever.
    with spawn_worker_pool(workers, store_root=store_root, cache_dir=cache_dir) as pool:
        futures = {
            pool.submit(_worker_run, spec.as_dict()): spec for spec in pending
        }
        # Drain EVERY future before raising anything: a scenario failing
        # in one worker must not discard results siblings already
        # finished — those are persisted below, so only the failures
        # need re-executing on resume.
        failures: Dict[ScenarioSpec, BaseException] = {}
        for future in as_completed(futures):
            try:
                spec_hash, result, elapsed = future.result()
            except Exception as error:
                failures[futures[future]] = error
                continue
            spec = by_hash[spec_hash]
            if store is not None:
                result = store.put(spec, result)
            else:
                result = jsonify_result(result)
            outcome.results[spec_hash] = result
            outcome.per_scenario_s[spec_hash] = elapsed
            outcome.executed += 1
            LOGGER.info(
                "scenario %s done in %.2fs (%d/%d)",
                spec.label(),
                elapsed,
                outcome.executed + outcome.cached,
                len(outcome.grid),
            )
        if failures:
            raise GridExecutionError(failures, completed=outcome.executed)


def _stack_groups(pending: Sequence[ScenarioSpec]) -> Dict[str, List[ScenarioSpec]]:
    """Map spec hash -> its stackable sibling group (only groups of >= 2).

    Groups compatible ``api_eval`` scenarios (same profile+overrides, repeat
    count and :meth:`SimConfig.compat_key`; see
    :func:`repro.api.api_eval_batch_key`) so the serial path can evaluate
    each group in one stacked forward.  Results stay keyed per spec and
    bit-identical to sequential execution, so resume/caching is unaffected.
    """
    from repro.api import api_eval_batch_key

    by_key: Dict[Any, List[ScenarioSpec]] = {}
    for spec in pending:
        key = api_eval_batch_key(spec)
        if key is not None:
            by_key.setdefault(key, []).append(spec)
    groups: Dict[str, List[ScenarioSpec]] = {}
    for members in by_key.values():
        if len(members) >= 2:
            for member in members:
                groups[member.hash] = members
    return groups


def run_grid(
    grid: ScenarioGrid,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    bundle=None,
    resume: bool = True,
    batch: bool = True,
) -> GridRunResult:
    """Execute every scenario of ``grid`` and return all results.

    Parameters
    ----------
    workers:
        ``<= 1`` runs the serial in-process oracle; ``> 1`` shards pending
        scenarios across that many spawned worker processes.
    store:
        Persistent result store.  With ``resume=True`` (default), scenarios
        already present in the store are returned from cache instead of
        recomputed — an interrupted suite picks up where it left off.
        ``None`` keeps results in memory for this call only (derived stages
        are still shared within the call).
    bundle:
        Optional pre-built bundle to execute against in serial mode (the
        benchmark harness shares one across experiments); only used for
        specs whose profile matches it.
    resume:
        Set to ``False`` to recompute every scenario even on store hits.
    batch:
        Stack compatible sibling ``api_eval`` scenarios into one batched
        multi-scenario forward on the serial path (default on; results are
        bit-identical per scenario and still persisted individually —
        serial == batched == parallel == resume).  Parallel mode already
        overlaps scenarios across workers and ignores this flag.
    """
    start = time.perf_counter()
    outcome = GridRunResult(grid=grid, results={}, workers=max(workers, 0))
    stage_store = store if store is not None else MemoryStore()

    pending: List[ScenarioSpec] = []
    for spec in grid:
        cached = store.get(spec) if (store is not None and resume) else None
        if cached is not None:
            outcome.results[spec.hash] = cached
            outcome.cached += 1
        else:
            pending.append(spec)

    if pending and workers > 1:
        _run_parallel(pending, workers, store, outcome)
    else:
        groups = _stack_groups(pending) if batch else {}
        bundles: Dict[str, Any] = {}
        touched: Dict[int, Any] = {}
        done_hashes = set()

        def _record(spec, result, elapsed):
            if store is not None:
                result = store.put(spec, result)
            else:
                result = jsonify_result(result)
            outcome.results[spec.hash] = result
            outcome.per_scenario_s[spec.hash] = elapsed
            outcome.executed += 1
            done_hashes.add(spec.hash)

        for spec in pending:
            if spec.hash in done_hashes:
                continue
            members = groups.get(spec.hash)
            if members is not None:
                from repro.api import execute_api_eval_batch

                spec_bundle = _bundle_for(spec, bundles, explicit_bundle=bundle)
                if spec_bundle is not None:
                    touched[id(spec_bundle)] = spec_bundle
                scenario_start = time.perf_counter()
                results = execute_api_eval_batch(
                    members, bundle=spec_bundle, stage_store=stage_store
                )
                elapsed = time.perf_counter() - scenario_start
                for member, result in zip(members, results):
                    _record(member, result, elapsed / len(members))
                LOGGER.info(
                    "stacked %d compatible scenarios in %.2fs (%d/%d)",
                    len(members),
                    elapsed,
                    outcome.executed + outcome.cached,
                    len(grid),
                )
                continue
            result, elapsed, spec_bundle = execute_pending(
                spec, stage_store, bundles=bundles, explicit_bundle=bundle
            )
            if spec_bundle is not None:
                touched[id(spec_bundle)] = spec_bundle
            _record(spec, result, elapsed)
            LOGGER.info(
                "scenario %s done in %.2fs (%d/%d)",
                spec.label(),
                elapsed,
                outcome.executed + outcome.cached,
                len(grid),
            )
        # Leave shared models as the drivers always have: at the pre-trained
        # snapshot, trainable, in the clean baseline config.
        for spec_bundle in touched.values():
            spec_bundle.restore_pretrained()
            spec_bundle.model.requires_grad_(True)
            apply_config(spec_bundle.model, SimConfig(mode="clean"))

    outcome.duration_s = time.perf_counter() - start
    return outcome
