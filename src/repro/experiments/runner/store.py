"""Content-addressed result store for scenario runs.

Extends the ``.repro_cache/`` pre-train cache (see
:func:`repro.experiments.common.get_cache_dir`) with two kinds of entries:

``results/<experiment>/<spec-hash>.json``
    The JSON result of one completed scenario, wrapped with its spec and a
    timestamp.  Keyed by the spec's content hash, so a changed scenario
    definition can never resurrect a stale result — it simply hashes
    elsewhere.

``stages/<stage-hash>.npz``
    Derived intermediate states shared by several scenarios (e.g. the
    NIA-fine-tuned weights that Table II's ``NIA``, ``NIA+GBO`` and
    ``NIA+PLA`` rows all start from).  Stage keys include their own derived
    seed, so a stage loaded from disk is bit-identical to one recomputed in
    place.

All writes are atomic (temp file + ``os.replace``), so a killed run leaves
no partial entries and concurrent workers can race on the same stage without
corruption.
"""

from __future__ import annotations

import copy
import json
import os
import time
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.experiments.runner.spec import ScenarioSpec, stable_hash
from repro.utils.logging import get_logger
from repro.utils.serialization import atomic_write

LOGGER = get_logger("repro.runner.store")

STORE_FORMAT = 1


def _atomic_write_text(path: str, text: str) -> None:
    def write(tmp: str) -> None:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)

    atomic_write(path, write)


def jsonify_result(value: Any) -> Any:
    """Public alias of :func:`_jsonify` for the executor's no-store path."""
    return _jsonify(value)


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays into plain JSON-serialisable python."""
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


class ResultStore:
    """On-disk scenario-result and stage-state store.

    Parameters
    ----------
    root:
        Store directory.  Defaults (lazily, at first use) to
        ``<cache-dir>/runner`` so the scenario cache lives next to the
        pre-train cache and honours ``REPRO_CACHE_DIR``.
    """

    def __init__(self, root: Optional[str] = None):
        self._root = root

    @property
    def root(self) -> str:
        if self._root is None:
            from repro.experiments.common import get_cache_dir

            self._root = os.path.join(get_cache_dir(), "runner")
        return self._root

    # ------------------------------------------------------------------
    # Scenario results
    # ------------------------------------------------------------------
    def result_path(self, spec: ScenarioSpec) -> str:
        return os.path.join(
            self.root, "results", spec.experiment or "misc", f"{spec.hash}.json"
        )

    def has(self, spec: ScenarioSpec) -> bool:
        return os.path.exists(self.result_path(spec))

    def get(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """The stored result for ``spec``, or ``None`` on a miss.

        A readable-but-broken entry — a reader racing a writer's
        mid-``atomic_write`` rename on a network filesystem, a truncated
        sync, a foreign file under the store root — is *skipped with a
        warning*, never raised: to every consumer (resume, report
        generation, a distributed worker's done-check) a partial entry is
        simply not done yet, and the next writer's atomic replace heals it.
        """
        path = self.result_path(spec)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return None
        except json.JSONDecodeError:
            LOGGER.warning(
                "skipping partially-written/corrupt store entry %s "
                "(treated as a miss; it will be recomputed)",
                path,
            )
            return None
        if not isinstance(payload, dict):
            LOGGER.warning(
                "skipping malformed store entry %s (payload is %s, not an object)",
                path,
                type(payload).__name__,
            )
            return None
        if payload.get("format") != STORE_FORMAT:
            return None
        return payload.get("result")

    def put(self, spec: ScenarioSpec, result: Mapping[str, Any]) -> Dict[str, Any]:
        """Persist a scenario result; returns the JSON-coerced result."""
        clean = _jsonify(dict(result))
        payload = {
            "format": STORE_FORMAT,
            "spec": spec.as_dict(),
            "result": clean,
            "created": time.time(),
        }
        _atomic_write_text(self.result_path(spec), json.dumps(payload, indent=2, sort_keys=True))
        return clean

    # ------------------------------------------------------------------
    # Stage states (derived weights shared between scenarios)
    # ------------------------------------------------------------------
    def stage_path(self, key: Mapping[str, Any]) -> str:
        return os.path.join(self.root, "stages", f"{stable_hash(dict(key))}.npz")

    def stage_state(
        self,
        key: Mapping[str, Any],
        compute: Callable[[], Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """Load a cached stage state, computing and persisting it on a miss.

        ``compute`` must be deterministic given ``key`` (stage keys embed
        their own derived seed), so concurrent workers racing on the same
        stage write identical bytes and the atomic replace makes the race
        harmless.
        """
        path = self.stage_path(key)
        if os.path.exists(path):
            try:
                with np.load(path) as payload:
                    return {name: payload[name].copy() for name in payload.files}
            except (OSError, ValueError):
                pass  # corrupt/partial entry: fall through and recompute
        state = compute()
        atomic_write(
            path,
            lambda tmp: np.savez(
                tmp, **{name: np.asarray(value) for name, value in state.items()}
            ),
            suffix=".tmp.npz",
        )
        # Mirror the load path's copy semantics: a caller mutating the
        # returned arrays must never alias whatever ``compute`` kept live
        # (e.g. a model's own parameter arrays) — hit and miss hand out
        # equally independent state.
        return {name: np.array(value, copy=True) for name, value in state.items()}

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def result_files(self) -> Dict[str, str]:
        """All stored result files: spec hash (from the filename) -> path."""
        import glob

        pattern = os.path.join(self.root, "results", "*", "*.json")
        return {
            os.path.splitext(os.path.basename(path))[0]: path
            for path in sorted(glob.glob(pattern))
        }

    def gc(
        self, valid_hashes, dry_run: bool = False, respect_leases: bool = True
    ) -> "GCReport":
        """Prune result entries whose hash no registered grid produces.

        ``valid_hashes`` is the live set (see
        :func:`repro.experiments.registry.registered_spec_hashes`).  Stage
        entries are left untouched: their keys are derived at execution time
        and an orphaned stage is recomputed-on-miss anyway.  With
        ``dry_run=True`` nothing is deleted; the report lists what would be.

        With ``respect_leases=True`` (default), hashes under a *live*
        lease file (``leases/`` next to the results — see
        :mod:`repro.distributed.lease`) also count as live: a distributed
        worker's in-flight or just-finished scenario must never be pruned
        by a concurrent ``gc``, even when its suite is an ad-hoc spec list
        no registered grid knows.  This is the same protection the serve
        layer gives its live requests, extended to cross-process workers;
        expired leases (crashed workers) grant no protection.
        """
        valid = set(valid_hashes)
        report = GCReport(dry_run=dry_run)
        if respect_leases:
            from repro.distributed.lease import LeaseManager

            leased = set(LeaseManager(self.root).live_hashes())
            report.leased = len(leased)
            valid |= leased
        for spec_hash, path in self.result_files().items():
            if spec_hash in valid:
                report.kept += 1
                continue
            report.pruned.append(path)
            if not dry_run:
                os.remove(path)
        if not dry_run:
            # Drop experiment directories the prune emptied.
            results_root = os.path.join(self.root, "results")
            if os.path.isdir(results_root):
                for entry in os.listdir(results_root):
                    directory = os.path.join(results_root, entry)
                    if os.path.isdir(directory) and not os.listdir(directory):
                        os.rmdir(directory)
        return report

    def clear(self) -> None:
        """Remove every stored result and stage (used by tests)."""
        import shutil

        if os.path.isdir(self.root):
            shutil.rmtree(self.root)


class GCReport:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    def __init__(self, dry_run: bool = False):
        self.dry_run = dry_run
        self.kept = 0
        self.pruned: list = []
        self.leased = 0  # live lease files extending the valid set

    def summary(self) -> str:
        verb = "would prune" if self.dry_run else "pruned"
        text = f"{verb} {len(self.pruned)} stale result(s), kept {self.kept}"
        if self.leased:
            text += f" ({self.leased} protected by live lease(s))"
        return text


class MemoryStore:
    """In-process store with the :class:`ResultStore` interface.

    Used when no persistent store is requested: scenario results live only
    for the duration of one :func:`~repro.experiments.runner.executor.run_grid`
    call, but stages are still shared between the scenarios of that call
    (e.g. Table II computes each sigma's NIA weights once, not three times).

    Copy semantics match :class:`ResultStore`'s JSON round-trip: ``get`` and
    ``put`` hand out deep copies, so a caller mutating a returned result can
    never contaminate later cache hits within the call.
    """

    def __init__(self):
        self._results: Dict[str, Dict[str, Any]] = {}
        self._stages: Dict[str, Dict[str, np.ndarray]] = {}

    def has(self, spec: ScenarioSpec) -> bool:
        return spec.hash in self._results

    def get(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        result = self._results.get(spec.hash)
        return None if result is None else copy.deepcopy(result)

    def put(self, spec: ScenarioSpec, result: Mapping[str, Any]) -> Dict[str, Any]:
        clean = _jsonify(dict(result))
        self._results[spec.hash] = copy.deepcopy(clean)
        return clean

    def stage_state(
        self,
        key: Mapping[str, Any],
        compute: Callable[[], Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        stage_key = stable_hash(dict(key))
        if stage_key not in self._stages:
            # Store copies: ``compute`` may return arrays still referenced
            # by live model state, which later training would mutate.
            self._stages[stage_key] = {
                name: np.array(value, copy=True) for name, value in compute().items()
            }
        return {name: np.array(value, copy=True) for name, value in self._stages[stage_key].items()}

    def clear(self) -> None:
        self._results.clear()
        self._stages.clear()


def default_store() -> ResultStore:
    """The store rooted under the current cache directory (resolved lazily)."""
    return ResultStore()
