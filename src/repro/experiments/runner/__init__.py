"""Scenario-pipeline runner: one cached, parallel, resumable execution layer.

The paper's results are a grid of (method x noise level x encoding x gamma)
scenarios.  This subsystem turns that grid into data:

* :class:`~repro.experiments.runner.spec.ScenarioSpec` declares one scenario
  (experiment, method, profile, noise level, gamma, engine pin, seed);
  :class:`~repro.experiments.runner.spec.ScenarioGrid` is a named collection
  of specs.  Every spec has a stable content hash, and every scenario derives
  its RNG seed from that hash — execution order and process boundaries cannot
  change a scenario's result.
* :class:`~repro.experiments.runner.store.ResultStore` is a content-addressed
  on-disk store keyed by the spec hash (under the ``.repro_cache/`` directory
  that already holds the pre-train cache), so interrupted suites resume
  instead of recomputing.
* :func:`~repro.experiments.runner.executor.run_grid` executes a grid either
  serially in-process (the bit-exact oracle) or sharded across a
  ``multiprocessing`` worker pool; both paths produce identical results.
  A third backend lives in :mod:`repro.distributed`: independent
  lease-based worker *processes* (any count, any host sharing the store
  directory) cooperatively drain a grid, again bit-identically — all
  three schedulers call the same
  :func:`~repro.experiments.runner.executor.execute_pending` core.

The five experiment drivers (``fig1b``, ``fig2``, ``table1``, ``table2``,
``ablations``) are expressed as grids on this runner; see
:mod:`repro.experiments.registry` for the index and
``python -m repro.experiments`` for the CLI.
"""

from repro.experiments.runner.executor import (
    GridExecutionError,
    GridRunResult,
    execute_pending,
    run_grid,
)
from repro.experiments.runner.scenarios import ScenarioContext, execute_scenario, needs_bundle
from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec
from repro.experiments.runner.store import MemoryStore, ResultStore, default_store

__all__ = [
    "GridExecutionError",
    "execute_pending",
    "ScenarioSpec",
    "ScenarioGrid",
    "ResultStore",
    "MemoryStore",
    "default_store",
    "ScenarioContext",
    "execute_scenario",
    "needs_bundle",
    "run_grid",
    "GridRunResult",
]
