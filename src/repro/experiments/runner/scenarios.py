"""Scenario execution: context object and per-experiment dispatch.

Every experiment module contributes one *scenario executor* — a function
``execute(ctx: ScenarioContext) -> dict`` that runs a single
:class:`~repro.experiments.runner.spec.ScenarioSpec` end to end and returns
a plain JSON-serialisable dict.  The dispatch table below maps experiment
identifiers to those executors via lazy imports, so worker processes only
import what they run and no circular imports arise (the experiment modules
import the executor's :func:`~repro.experiments.runner.executor.run_grid`,
not this module).

Determinism contract (what makes serial, parallel and resumed runs
bit-identical):

1. the executor calls :func:`repro.utils.seed.seed_everything` with the
   spec's :meth:`~repro.experiments.runner.spec.ScenarioSpec.derived_seed`
   before handing control to the experiment code;
2. :meth:`ScenarioContext.model` restores the bundle's pre-trained snapshot,
   re-enables gradients and re-pins the engine, erasing whatever a previous
   scenario did to the shared model;
3. :meth:`ScenarioContext.loaders` builds *fresh* data loaders whose shuffle
   RNGs start from the profile seed — iteration order cannot depend on how
   many scenarios ran before;
4. shared intermediate stages (:meth:`ScenarioContext.stage_state`) seed
   from their own key and reseed the scenario stream afterwards, so a stage
   loaded from cache and a stage computed in place leave the scenario in
   exactly the same RNG state.
"""

from __future__ import annotations

import importlib
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.runner.spec import ScenarioSpec, stable_seed
from repro.sim import SimConfig, apply_config, resolve_engine_name
from repro.utils.seed import seed_everything

#: experiment identifier -> (module, executor function, needs a pre-trained bundle)
_EXECUTORS: Dict[str, Tuple[str, str, bool]] = {
    "fig1b": ("repro.experiments.fig1b", "execute_fig1b_scenario", False),
    "fig2": ("repro.experiments.fig2", "execute_fig2_scenario", True),
    "table1": ("repro.experiments.table1", "execute_table1_scenario", True),
    "table2": ("repro.experiments.table2", "execute_table2_scenario", True),
    "ablation_encoding": (
        "repro.experiments.ablations",
        "execute_encoding_scenario",
        True,
    ),
    "ablation_pla_error": (
        "repro.experiments.ablations",
        "execute_pla_error_scenario",
        False,
    ),
    "ablation_gamma": (
        "repro.experiments.ablations",
        "execute_gamma_scenario",
        True,
    ),
    # Facade evaluation as a scenario: the request type behind repro.serve.
    "api_eval": ("repro.api", "execute_api_eval_scenario", True),
    # Bundle-free diagnostic scenario (latency/failure injection); used by
    # the serve layer's health probes and the executor's failure tests.
    "selftest": (
        "repro.experiments.runner.scenarios",
        "execute_selftest_scenario",
        False,
    ),
}


def needs_bundle(experiment: str) -> bool:
    """Whether scenarios of this experiment require a pre-trained bundle."""
    try:
        return _EXECUTORS[experiment][2]
    except KeyError as error:
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {sorted(_EXECUTORS)}"
        ) from error


def _resolve_executor(experiment: str) -> Callable[["ScenarioContext"], Dict[str, Any]]:
    try:
        module_name, function_name, _ = _EXECUTORS[experiment]
    except KeyError as error:
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {sorted(_EXECUTORS)}"
        ) from error
    module = importlib.import_module(module_name)
    return getattr(module, function_name)


class ScenarioContext:
    """Everything one scenario executor may touch.

    The context owns the determinism contract described in the module
    docstring; experiment executors only read ``ctx.spec`` and call the
    accessors below.
    """

    def __init__(self, spec: ScenarioSpec, bundle=None, stage_store=None):
        self.spec = spec
        self.bundle = bundle
        self.stage_store = stage_store
        self._loaders = None

    # ------------------------------------------------------------------
    # Profile / seeds
    # ------------------------------------------------------------------
    @property
    def profile(self) -> Optional[ExperimentProfile]:
        # Always reconstructed from the spec (never taken from the bundle):
        # the spec's overrides are part of its hash, so they must be honoured
        # identically whether the scenario runs against a shared in-process
        # bundle or a worker's freshly built one.
        if self.spec.profile:
            return get_profile(self.spec.profile).with_overrides(
                **self.spec.override_dict()
            )
        if self.bundle is not None:
            return self.bundle.profile
        return None

    def base_seed(self) -> int:
        if self.spec.seed is not None:
            return self.spec.seed
        profile = self.profile
        return profile.seed if profile is not None else 0

    def scenario_seed(self) -> int:
        """The scenario's derived RNG seed (pure function of the spec)."""
        return self.spec.derived_seed(self.base_seed())

    def reseed(self) -> None:
        """(Re)enter the scenario's own RNG stream."""
        seed_everything(self.scenario_seed())

    # ------------------------------------------------------------------
    # Model / data
    # ------------------------------------------------------------------
    def model(self):
        """The bundle's model, reset to a scenario-independent state.

        Restores the pre-trained snapshot (weights, BN buffers), re-enables
        gradients (a previous GBO scenario froze them) and applies the
        scenario's base :class:`~repro.sim.SimConfig` — clean mode, zero
        noise, the spec's resolved engine — erasing whatever a previous
        scenario configured on the shared model.
        """
        if self.bundle is None:
            raise ValueError(
                f"scenario {self.spec.label()} needs a pre-trained bundle"
            )
        model = self.bundle.model
        self.bundle.restore_pretrained()
        model.requires_grad_(True)
        apply_config(model, self.sim_config(), self.profile)
        return model

    def sim_config(self) -> SimConfig:
        """The scenario's base simulation config (see ScenarioSpec.sim_config)."""
        return self.spec.sim_config(self.profile)

    def noisy_sim(self, pulses=None, sigma: Optional[float] = None) -> SimConfig:
        """The scenario's noisy-inference config.

        Derived from the base config: noisy mode, the spec's sigma (or an
        explicit override), the profile's noise convention and an optional
        pulse count/schedule (``None`` keeps the model's current pulses).
        """
        profile = self.profile
        return self.sim_config().with_changes(
            mode="noisy",
            noise_sigma=float(sigma if sigma is not None else self.spec.sigma),
            pulses=pulses,
            sigma_relative_to_fan_in=(
                profile.noise_relative_to_fan_in if profile is not None else None
            ),
        )

    def engine_name(self) -> str:
        """The scenario's engine under the one precedence rule.

        Spec pin first, then the deprecated ``REPRO_BACKEND`` override, the
        profile's backend, and finally the process default — see
        :func:`repro.sim.resolve_engine_name`.
        """
        return resolve_engine_name(self.spec.engine, self.profile)

    def loaders(self):
        """Fresh (train, test, gbo) loaders for the scenario's profile."""
        if self._loaders is None:
            from repro.experiments.common import build_loaders

            self._loaders = build_loaders(self.profile)
        return self._loaders

    @property
    def train_loader(self):
        return self.loaders()[0]

    @property
    def test_loader(self):
        return self.loaders()[1]

    @property
    def gbo_loader(self):
        return self.loaders()[2]

    @property
    def clean_accuracy(self) -> float:
        return self.bundle.clean_accuracy

    # ------------------------------------------------------------------
    # Shared stages
    # ------------------------------------------------------------------
    def stage_seed(self, key: Mapping[str, Any]) -> int:
        """Deterministic seed for a shared stage (independent of the spec)."""
        return stable_seed({"stage": dict(key), "base": self.base_seed()})

    def stage_state(
        self,
        key: Mapping[str, Any],
        compute: Callable[[], Dict[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        """A cached derived state shared between scenarios (e.g. NIA weights).

        ``compute`` runs inside the stage's own RNG stream (seeded from the
        key, not the spec), so every scenario that needs the stage computes
        the identical state.  Afterwards the scenario's stream is re-entered,
        making cache hits and misses indistinguishable to the caller.
        """
        full_key = dict(key)
        full_key["stage_seed"] = self.stage_seed(key)

        def seeded_compute() -> Dict[str, np.ndarray]:
            seed_everything(full_key["stage_seed"])
            return compute()

        if self.stage_store is not None:
            state = self.stage_store.stage_state(full_key, seeded_compute)
        else:
            state = seeded_compute()
        self.reseed()
        return state


def execute_selftest_scenario(ctx: "ScenarioContext") -> Dict[str, Any]:
    """Diagnostic scenario: no bundle, no model — pure spec-derived output.

    Parameters travel as spec params: ``sleep_s`` injects latency, ``fail``
    raises on demand, ``value`` is echoed back.  The serve layer uses it as
    a live health probe; the executor tests use it to stage deterministic
    worker failures and sleeps without pre-training anything.
    """
    spec = ctx.spec
    sleep_s = float(spec.param("sleep_s", 0.0) or 0.0)
    if sleep_s > 0:
        time.sleep(sleep_s)
    if spec.param("fail", False):
        raise RuntimeError(f"selftest scenario failed on request: {spec.label()}")
    return {
        "experiment": "selftest",
        "method": spec.method,
        "value": spec.param("value"),
        "seed": ctx.scenario_seed(),
    }


def execute_scenario(
    spec: ScenarioSpec, bundle=None, stage_store=None
) -> Dict[str, Any]:
    """Run one scenario in the current process and return its result dict."""
    executor = _resolve_executor(spec.experiment)
    ctx = ScenarioContext(spec, bundle=bundle, stage_store=stage_store)
    ctx.reseed()
    return executor(ctx)
