"""Declarative scenario model: :class:`ScenarioSpec` and :class:`ScenarioGrid`.

A spec is a frozen, hashable, JSON-serialisable description of one scenario.
Its content hash keys the on-disk result store and derives the scenario's
RNG seed, which is what makes the runner's three execution modes (serial
oracle, worker pool, cached resume) bit-identical: a scenario's randomness
depends only on *what* it is, never on *when* or *where* it runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.sim import SimConfig
from repro.sim import engine_name as _engine_name
from repro.sim import resolve_engine_name
from repro.utils.hashing import stable_hash, stable_seed

#: Bump when the execution semantics change incompatibly; part of the hash,
#: so stale store entries are simply never looked up again.
SPEC_VERSION = 1


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalise a mapping into a sorted, hashable tuple of pairs."""
    if not mapping:
        return ()
    items = []
    for key in sorted(mapping):
        value = mapping[key]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        items.append((str(key), value))
    return tuple(items)


def engine_token(engine: Any) -> Optional[str]:
    """Canonical registry name for an engine pin.

    Specs must stay JSON-canonical and stable across processes, so engine
    pins are stored as registry names.  Accepts ``None``, a name, or an
    engine instance (coerced via its ``name`` attribute, the same identity
    the :mod:`repro.backend` registry uses); anything else is rejected
    loudly rather than stringified into an address-dependent hash.
    Alias of :func:`repro.sim.engine_name` — one canonicalisation rule.
    """
    return _engine_name(engine)


def profile_axes(profile, engine: Any = None) -> Dict[str, Any]:
    """Spec fields binding a scenario to a concrete profile and engine.

    Grid builders spread this into :meth:`ScenarioSpec.create` so every
    spec is fully self-describing:

    * the profile travels as ``name`` + the overrides that differ from the
      registered base (a worker rebuilds it exactly, and an overridden
      profile hashes differently from the base one);
    * the engine pin is resolved *now*, through the one precedence rule of
      :func:`repro.sim.resolve_engine_name` (explicit argument, deprecated
      ``REPRO_BACKEND``, the profile's backend, the process default) — so
      results produced under different backends can never answer each
      other's store lookups (the engines agree only statistically on noisy
      reads, not sample-for-sample).
    """
    from repro.experiments.profiles import profile_overrides

    return {
        "profile": profile.name,
        "overrides": profile_overrides(profile),
        "engine": resolve_engine_name(engine, profile),
    }


def grid_profile(grid: "ScenarioGrid", fallback: Any = None):
    """The profile a grid's scenarios execute under, rebuilt from the specs.

    Assemblers use this instead of a bundle's profile: the in-process bundle
    cache deliberately aliases profiles that differ only in eval-only fields
    (they share pre-trained weights), so the bundle's profile may lack the
    overrides the grid was built with.
    """
    first = next(iter(grid), None)
    if first is not None and first.profile:
        from repro.experiments.profiles import get_profile

        return get_profile(first.profile).with_overrides(**first.override_dict())
    return fallback.profile if fallback is not None else None


@dataclass(frozen=True)
class ScenarioSpec:
    """Description of one scenario: a single (method, configuration) cell.

    Attributes
    ----------
    experiment:
        Registry identifier of the owning experiment (``"table1"``, ...).
    method:
        Method label within the experiment (``"Baseline"``, ``"PLA12"``,
        ``"GBO-long"``, ``"NIA+GBO"``, ``"layer:conv3"``, ...).
    profile:
        Experiment profile name; empty for profile-less experiments
        (``fig1b``, ``ablation_pla_error``).
    overrides:
        Frozen profile field overrides (from
        :meth:`~repro.experiments.profiles.ExperimentProfile.with_overrides`).
    sigma / gamma:
        The scenario's noise level and GBO latency weight, when applicable.
    engine:
        Simulation-engine pin (registry name) for everything the scenario
        runs; ``None`` tracks the profile's backend / ``REPRO_BACKEND``.
    seed:
        Base seed mixed into the derived per-scenario seed; ``None`` uses
        the profile's seed (or 0 for profile-less experiments).
    params:
        Frozen experiment-specific extras (pulse counts, layer index, ...).
    sim:
        Frozen payload of an explicitly attached, non-default
        :class:`repro.sim.SimConfig`.  A scenario's identity *always*
        incorporates its sim config: for default configs the config is a
        pure function of the hashed ``engine`` / ``sigma`` / profile fields
        (see :meth:`sim_config`), so the payload stays empty and existing
        scenario hashes are unchanged; an explicitly attached non-default
        config extends the hashed payload (``"sim"`` key) and therefore
        changes the identity, store key and derived seed.
    """

    experiment: str
    method: str = ""
    profile: str = ""
    overrides: Tuple[Tuple[str, Any], ...] = ()
    sigma: Optional[float] = None
    gamma: Optional[float] = None
    engine: Optional[str] = None
    seed: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    sim: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        experiment: str,
        method: str = "",
        profile: str = "",
        overrides: Optional[Mapping[str, Any]] = None,
        sigma: Optional[float] = None,
        gamma: Optional[float] = None,
        engine: Optional[str] = None,
        seed: Optional[int] = None,
        sim: Optional[SimConfig] = None,
        **params: Any,
    ) -> "ScenarioSpec":
        """Build a spec with mappings canonicalised into frozen tuples.

        ``sim`` attaches an explicit non-default :class:`SimConfig`; when
        given, its engine pin becomes the spec's engine and the full config
        payload joins the hashed identity.
        """
        if sim is not None:
            if engine is not None and engine_token(engine) != sim.engine:
                raise ValueError(
                    f"conflicting engine pins: engine={engine!r} vs "
                    f"sim.engine={sim.engine!r}"
                )
            engine = sim.engine
        return cls(
            experiment=experiment,
            method=method,
            profile=profile,
            overrides=_freeze(overrides),
            sigma=None if sigma is None else float(sigma),
            gamma=None if gamma is None else float(gamma),
            engine=engine_token(engine),
            seed=seed,
            params=_freeze(params),
            sim=() if sim is None else _freeze(sim.as_dict()),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def param(self, name: str, default: Any = None) -> Any:
        """Look up an experiment-specific extra parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def override_dict(self) -> Dict[str, Any]:
        """Profile overrides as a plain dict."""
        return {key: value for key, value in self.overrides}

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable form (used for hashing and storage).

        The ``"sim"`` key is present only for explicitly attached
        non-default configs — default-config specs keep the exact payload
        (and hence hash) they had before sim configs existed.
        """
        payload = {
            "version": SPEC_VERSION,
            "experiment": self.experiment,
            "method": self.method,
            "profile": self.profile,
            "overrides": [list(pair) for pair in self.overrides],
            "sigma": self.sigma,
            "gamma": self.gamma,
            "engine": self.engine,
            "seed": self.seed,
            "params": [list(pair) for pair in self.params],
        }
        if self.sim:
            payload["sim"] = [list(pair) for pair in self.sim]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`as_dict` output (e.g. in a worker)."""
        return cls(
            experiment=payload["experiment"],
            method=payload.get("method", ""),
            profile=payload.get("profile", ""),
            overrides=tuple(
                (pair[0], tuple(pair[1]) if isinstance(pair[1], list) else pair[1])
                for pair in payload.get("overrides", ())
            ),
            sigma=payload.get("sigma"),
            gamma=payload.get("gamma"),
            engine=payload.get("engine"),
            seed=payload.get("seed"),
            params=tuple(
                (pair[0], tuple(pair[1]) if isinstance(pair[1], list) else pair[1])
                for pair in payload.get("params", ())
            ),
            sim=tuple(
                (pair[0], tuple(pair[1]) if isinstance(pair[1], list) else pair[1])
                for pair in payload.get("sim", ())
            ),
        )

    def sim_config(self, profile: Any = None) -> SimConfig:
        """The scenario's base :class:`SimConfig` (clean mode, resolved engine).

        For default specs the config is derived from the hashed spec fields
        — the spec's engine pin (resolved through the one precedence rule
        when absent) plus the profile's conventions — which is why the
        spec hash already incorporates the config identity without an extra
        payload.  Explicitly attached configs (:meth:`create`'s ``sim=``)
        are returned verbatim.

        The derived baseline is deliberately *concrete* (baseline pulse
        count, paper PLA rounding, explicit float64 compute dtype) rather
        than "keep current": applying it in :meth:`ScenarioContext.model`
        must erase whatever a previous scenario — possibly one with an
        explicitly attached non-default config — left on the shared model
        or the process dtype policy, or results would depend on execution
        order.  The explicit dtype never enters the hashed payload: derived
        configs are a pure function of the hashed spec fields and are never
        serialised into it.
        """
        if self.sim:
            return SimConfig.from_dict(dict(self.sim))
        engine = self.engine
        if engine is None:
            engine = resolve_engine_name(None, profile)
        base_pulses = getattr(profile, "base_pulses", None)
        return SimConfig(
            engine=engine,
            pulses=base_pulses,
            sigma_relative_to_fan_in=getattr(profile, "noise_relative_to_fan_in", None),
            pla_mode="toward_extremes",
            dtype="float64",
        )

    @cached_property
    def hash(self) -> str:
        """Stable content hash; the store key and seed source."""
        return stable_hash(self.as_dict())

    def derived_seed(self, base: Optional[int] = None) -> int:
        """Per-scenario RNG seed: a pure function of the spec content.

        ``base`` defaults to the spec's own ``seed`` field (typically the
        profile seed), so re-running an identical grid reproduces identical
        noise streams while two different scenarios never share one.
        """
        if base is None:
            base = self.seed if self.seed is not None else 0
        return stable_seed({"spec": self.hash, "base": base})

    def label(self) -> str:
        """Short human-readable identity for logs and progress lines."""
        bits = [self.experiment]
        if self.method:
            bits.append(self.method)
        if self.sigma is not None:
            bits.append(f"sigma={self.sigma:g}")
        if self.gamma is not None:
            bits.append(f"gamma={self.gamma:g}")
        return " ".join(bits)


@dataclass(frozen=True)
class ScenarioGrid:
    """A named, ordered collection of scenario specs."""

    name: str
    specs: Tuple[ScenarioSpec, ...] = ()

    def __post_init__(self) -> None:
        seen: Dict[str, ScenarioSpec] = {}
        for spec in self.specs:
            if spec.hash in seen:
                raise ValueError(
                    f"duplicate scenario in grid {self.name!r}: {spec.label()}"
                )
            seen[spec.hash] = spec

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @cached_property
    def hash(self) -> str:
        """Content hash over all member specs (order-sensitive)."""
        return stable_hash([spec.as_dict() for spec in self.specs])

    def experiments(self) -> Tuple[str, ...]:
        """Distinct experiment identifiers in first-appearance order."""
        ordered = []
        for spec in self.specs:
            if spec.experiment not in ordered:
                ordered.append(spec.experiment)
        return tuple(ordered)

    def subset(self, predicate) -> "ScenarioGrid":
        """A new grid with only the specs matching ``predicate``."""
        return ScenarioGrid(
            name=self.name, specs=tuple(s for s in self.specs if predicate(s))
        )

    @classmethod
    def concat(cls, name: str, grids: Iterable["ScenarioGrid"]) -> "ScenarioGrid":
        """Concatenate several grids into one suite."""
        specs: Tuple[ScenarioSpec, ...] = ()
        for grid in grids:
            specs = specs + grid.specs
        return cls(name=name, specs=specs)

    @classmethod
    def from_product(
        cls,
        name: str,
        experiment: str,
        methods: Sequence[str],
        sigmas: Sequence[Optional[float]] = (None,),
        **common: Any,
    ) -> "ScenarioGrid":
        """Cross-product helper: one spec per (method, sigma) pair."""
        specs = tuple(
            ScenarioSpec.create(
                experiment=experiment, method=method, sigma=sigma, **common
            )
            for sigma in sigmas
            for method in methods
        )
        return cls(name=name, specs=specs)
