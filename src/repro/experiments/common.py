"""Shared experiment infrastructure: data building, model building and a
cached pre-training stage.

Pre-training the binary-weight network is by far the most expensive step of
the reproduction, and every table/figure needs the same pre-trained model.
:func:`get_pretrained_bundle` therefore memoises the result both in-process
and on disk (``.repro_cache/``), keyed by the profile, so the benchmark
harness pre-trains exactly once per profile.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data import DataLoader, SyntheticImageConfig, make_synthetic_cifar
from repro.data.dataset import Subset, TensorDataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.models import VGG9, CrossbarLeNet, CrossbarMLP, VGGConfig
from repro.tensor.random import RandomState
from repro.training import PretrainConfig, evaluate_accuracy, pretrain_model
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.utils.logging import get_logger
from repro.utils.seed import seed_everything

LOGGER = get_logger("repro.experiments")

#: Default on-disk cache directory for pre-trained models.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", os.path.join(os.getcwd(), ".repro_cache"))

_BUNDLE_CACHE: Dict[str, "ExperimentBundle"] = {}


@dataclass
class ExperimentBundle:
    """Everything an experiment needs: data loaders and a pre-trained model."""

    profile: ExperimentProfile
    model: object
    train_loader: DataLoader
    test_loader: DataLoader
    gbo_loader: DataLoader
    clean_accuracy: float

    def pretrained_state(self) -> Dict[str, np.ndarray]:
        """A copy of the pre-trained parameters/buffers for later restores."""
        return self.model.state_dict()

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the model to a given parameter/buffer state.

        Non-strict loading is used on purpose: the GBO stage attaches extra
        ``gbo_logits`` parameters to the encoded layers, so a state captured
        before GBO is a strict subset of the model's current parameters.
        """
        self.model.load_state_dict(state, strict=False)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def build_loaders(
    profile: ExperimentProfile,
) -> Tuple[DataLoader, DataLoader, DataLoader]:
    """Build (train, test, gbo) data loaders for a profile.

    The GBO loader iterates a fixed subset of the training set — the paper
    trains the encoding logits on the training data; a subset keeps the
    pure-numpy backend fast while leaving gradients representative.
    """
    config = SyntheticImageConfig(
        num_classes=profile.num_classes, image_size=profile.image_size
    )
    train_set, test_set = make_synthetic_cifar(
        num_train=profile.num_train,
        num_test=profile.num_test,
        config=config,
        seed=profile.seed,
    )
    rng = RandomState(profile.seed + 1)
    train_loader = DataLoader(
        train_set, batch_size=profile.batch_size, shuffle=True, rng=rng
    )
    test_loader = DataLoader(test_set, batch_size=profile.batch_size, shuffle=False)
    subset_size = min(profile.gbo_subset, len(train_set))
    gbo_subset = Subset(train_set, list(range(subset_size)))
    gbo_loader = DataLoader(
        gbo_subset, batch_size=profile.batch_size, shuffle=True, rng=rng.spawn()
    )
    return train_loader, test_loader, gbo_loader


def build_model(profile: ExperimentProfile):
    """Instantiate the profile's network with the profile's quantisation setup.

    The profile's ``backend`` selects the simulation engine of the encoded
    layers (the ``REPRO_BACKEND`` environment variable overrides it).
    """
    rng = RandomState(profile.seed + 2)
    model = _build_model_architecture(profile, rng)
    model.set_engine(os.environ.get("REPRO_BACKEND", profile.backend))
    return model


def _build_model_architecture(profile: ExperimentProfile, rng: RandomState):
    if profile.model == "vgg9":
        config = VGGConfig(
            num_classes=profile.num_classes,
            image_size=profile.image_size,
            width_multiplier=profile.width_multiplier,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
        )
        return VGG9(config, rng=rng)
    if profile.model == "lenet":
        return CrossbarLeNet(
            num_classes=profile.num_classes,
            image_size=profile.image_size,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
            rng=rng,
        )
    if profile.model == "mlp":
        in_features = 3 * profile.image_size * profile.image_size
        return CrossbarMLP(
            in_features=in_features,
            hidden_sizes=(96, 96, 96),
            num_classes=profile.num_classes,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
            rng=rng,
        )
    raise ValueError(f"unknown model kind {profile.model!r} in profile {profile.name!r}")


def _checkpoint_path(profile: ExperimentProfile) -> str:
    token = (
        f"{profile.name}_{profile.model}_w{profile.width_multiplier}_s{profile.image_size}"
        f"_n{profile.num_train}_e{profile.pretrain_epochs}_seed{profile.seed}"
    )
    return os.path.join(CACHE_DIR, f"pretrained_{token}.npz")


def get_pretrained_bundle(
    profile: Optional[ExperimentProfile] = None,
    use_disk_cache: bool = True,
    force_retrain: bool = False,
) -> ExperimentBundle:
    """Return a pre-trained model plus its data loaders for ``profile``.

    Results are memoised per profile name in-process; the pre-trained weights
    are additionally cached on disk so repeated benchmark invocations skip
    the expensive pre-training stage.
    """
    profile = profile or get_profile()
    cache_key = profile.name
    if not force_retrain and cache_key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[cache_key]

    seed_everything(profile.seed)
    train_loader, test_loader, gbo_loader = build_loaders(profile)
    model = build_model(profile)

    checkpoint = _checkpoint_path(profile)
    loaded = False
    if use_disk_cache and not force_retrain and os.path.exists(checkpoint):
        try:
            load_checkpoint(checkpoint, model)
            loaded = True
            LOGGER.info("loaded pre-trained weights from %s", checkpoint)
        except (KeyError, ValueError) as error:
            LOGGER.warning("ignoring stale checkpoint %s (%s)", checkpoint, error)

    if not loaded:
        LOGGER.info(
            "pre-training %s model for profile %r (%d epochs)",
            profile.model,
            profile.name,
            profile.pretrain_epochs,
        )
        pretrain_model(
            model,
            train_loader,
            val_loader=None,
            config=PretrainConfig(
                epochs=profile.pretrain_epochs, learning_rate=profile.pretrain_lr
            ),
        )
        if use_disk_cache:
            save_checkpoint(checkpoint, model, metadata={"profile": profile.name})

    model.set_mode("clean")
    clean_accuracy = evaluate_accuracy(model, test_loader)
    LOGGER.info("clean accuracy for profile %r: %.2f%%", profile.name, clean_accuracy)

    bundle = ExperimentBundle(
        profile=profile,
        model=model,
        train_loader=train_loader,
        test_loader=test_loader,
        gbo_loader=gbo_loader,
        clean_accuracy=clean_accuracy,
    )
    _BUNDLE_CACHE[cache_key] = bundle
    return bundle


def clear_bundle_cache() -> None:
    """Drop all in-process cached bundles (used by tests)."""
    _BUNDLE_CACHE.clear()
