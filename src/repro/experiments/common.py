"""Shared experiment infrastructure: data building, model building and a
cached pre-training stage.

Pre-training the binary-weight network is by far the most expensive step of
the reproduction, and every table/figure needs the same pre-trained model.
:func:`get_pretrained_bundle` therefore memoises the result both in-process
and on disk (the directory returned by :func:`get_cache_dir`), keyed by the
profile, so the benchmark harness and the scenario runner's worker processes
pre-train exactly once per profile.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data import DataLoader, SyntheticImageConfig, make_synthetic_cifar
from repro.data.dataset import Subset, TensorDataset
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.models import VGG9, CrossbarLeNet, CrossbarMLP, VGGConfig
from repro.sim import SimConfig, apply_config, resolve_engine_name
from repro.tensor.random import RandomState
from repro.training import PretrainConfig, evaluate_accuracy, pretrain_model
from repro.training.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    update_checkpoint_metadata,
)
from repro.utils.logging import get_logger
from repro.utils.seed import seed_everything

LOGGER = get_logger("repro.experiments")

#: Environment variable overriding the on-disk cache directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def get_cache_dir() -> str:
    """On-disk cache directory for pre-trained models and scenario results.

    Resolved lazily on every call so ``REPRO_CACHE_DIR`` set *after* this
    module was imported (by tests, the CLI's ``--cache-dir`` flag, or a
    worker process) is honoured.
    """
    return os.environ.get(CACHE_ENV_VAR, os.path.join(os.getcwd(), ".repro_cache"))


# The pre-trained bundle cache lives on the current ExecutionContext
# (``current_context().bundles``) — each worker process/explicit context
# owns its own bundles, and bounded holders (the serve model pool) release
# memory through :func:`evict_bundle` without reaching into module state.
#
# The dataset cache stays module-level on purpose: dataset arrays are an
# immutable pure function of the profile (explicit seeds throughout), so
# sharing them across contexts is safe and avoids re-generating identical
# arrays per context.
_DATASET_CACHE: Dict[Tuple, Tuple[TensorDataset, TensorDataset]] = {}


def _bundle_cache() -> Dict[str, "ExperimentBundle"]:
    """The current execution context's bundle cache (keyed by profile token)."""
    from repro.context import current_context

    return current_context().bundles


@dataclass
class ExperimentBundle:
    """Everything an experiment needs: data loaders and a pre-trained model."""

    profile: ExperimentProfile
    model: object
    train_loader: DataLoader
    test_loader: DataLoader
    gbo_loader: DataLoader
    clean_accuracy: float
    #: Parameter/buffer state captured right after pre-training; the scenario
    #: runner restores it at the start of every scenario so execution order
    #: (and process boundaries) cannot leak state between scenarios.
    pretrained_snapshot: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def pretrained_state(self) -> Dict[str, np.ndarray]:
        """A copy of the pre-trained parameters/buffers for later restores."""
        return self.model.state_dict()

    def restore(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the model to a given parameter/buffer state.

        Non-strict loading is used on purpose: the GBO stage attaches extra
        ``gbo_logits`` parameters to the encoded layers, so a state captured
        before GBO is a strict subset of the model's current parameters.
        """
        self.model.load_state_dict(state, strict=False)

    def restore_pretrained(self) -> None:
        """Reset the model to the snapshot captured right after pre-training."""
        self.restore(self.pretrained_snapshot)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def get_datasets(profile: ExperimentProfile) -> Tuple[TensorDataset, TensorDataset]:
    """Memoised (train, test) synthetic datasets for a profile.

    Dataset generation is a pure function of the profile (explicit seeds
    throughout), so the arrays can be shared between every scenario run in a
    process; the stateful parts (loader shuffle RNGs) are rebuilt per use.
    """
    key = (
        profile.num_classes,
        profile.image_size,
        profile.num_train,
        profile.num_test,
        profile.seed,
    )
    if key not in _DATASET_CACHE:
        config = SyntheticImageConfig(
            num_classes=profile.num_classes, image_size=profile.image_size
        )
        _DATASET_CACHE[key] = make_synthetic_cifar(
            num_train=profile.num_train,
            num_test=profile.num_test,
            config=config,
            seed=profile.seed,
        )
    return _DATASET_CACHE[key]


def build_loaders(
    profile: ExperimentProfile,
) -> Tuple[DataLoader, DataLoader, DataLoader]:
    """Build (train, test, gbo) data loaders for a profile.

    The GBO loader iterates a fixed subset of the training set — the paper
    trains the encoding logits on the training data; a subset keeps the
    pure-numpy backend fast while leaving gradients representative.

    The returned loaders are freshly constructed (their shuffle RNGs start
    from the profile seed), so two calls yield bit-identical iteration
    orders; the scenario runner relies on this for order-independent,
    process-independent scenario execution.
    """
    train_set, test_set = get_datasets(profile)
    rng = RandomState(profile.seed + 1)
    train_loader = DataLoader(
        train_set, batch_size=profile.batch_size, shuffle=True, rng=rng
    )
    test_loader = DataLoader(test_set, batch_size=profile.batch_size, shuffle=False)
    subset_size = min(profile.gbo_subset, len(train_set))
    gbo_subset = Subset(train_set, list(range(subset_size)))
    gbo_loader = DataLoader(
        gbo_subset, batch_size=profile.batch_size, shuffle=True, rng=rng.spawn()
    )
    return train_loader, test_loader, gbo_loader


def build_model(profile: ExperimentProfile):
    """Instantiate the profile's network with the profile's quantisation setup.

    The encoded layers' simulation engine follows the one precedence rule of
    :func:`repro.sim.resolve_engine_name` (no explicit pin here, so:
    deprecated ``REPRO_BACKEND`` override, else the profile's ``backend``).
    """
    rng = RandomState(profile.seed + 2)
    model = _build_model_architecture(profile, rng)
    apply_config(model, SimConfig(engine=resolve_engine_name(None, profile)))
    return model


def _build_model_architecture(profile: ExperimentProfile, rng: RandomState):
    if profile.model == "vgg9":
        config = VGGConfig(
            num_classes=profile.num_classes,
            image_size=profile.image_size,
            width_multiplier=profile.width_multiplier,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
        )
        return VGG9(config, rng=rng)
    if profile.model == "lenet":
        return CrossbarLeNet(
            num_classes=profile.num_classes,
            image_size=profile.image_size,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
            rng=rng,
        )
    if profile.model == "mlp":
        in_features = 3 * profile.image_size * profile.image_size
        return CrossbarMLP(
            in_features=in_features,
            hidden_sizes=(96, 96, 96),
            num_classes=profile.num_classes,
            activation_levels=profile.activation_levels,
            sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
            rng=rng,
        )
    raise ValueError(f"unknown model kind {profile.model!r} in profile {profile.name!r}")


def profile_token(profile: ExperimentProfile) -> str:
    """Stable token identifying everything the pre-trained weights depend on.

    Keys the in-process bundle cache, the on-disk checkpoint and the NIA
    stage states, so it must cover every profile field that influences
    pre-training — an overridden profile that trains differently must never
    answer the base profile's cache lookups.  (Eval-only fields like
    ``eval_repeats`` or ``sigmas`` are deliberately excluded: they share the
    pre-trained weights.)
    """
    return (
        f"{profile.name}_{profile.model}_w{profile.width_multiplier}_s{profile.image_size}"
        f"_n{profile.num_train}_e{profile.pretrain_epochs}_lr{profile.pretrain_lr:g}"
        f"_b{profile.batch_size}_c{profile.num_classes}_a{profile.activation_levels}"
        f"_seed{profile.seed}"
    )


def _checkpoint_path(profile: ExperimentProfile) -> str:
    return os.path.join(get_cache_dir(), f"pretrained_{profile_token(profile)}.npz")


def get_pretrained_bundle(
    profile: Optional[ExperimentProfile] = None,
    use_disk_cache: bool = True,
    force_retrain: bool = False,
) -> ExperimentBundle:
    """Return a pre-trained model plus its data loaders for ``profile``.

    Results are memoised per profile token in-process; the pre-trained
    weights (and the measured clean accuracy, as checkpoint metadata) are
    additionally cached on disk so repeated benchmark invocations and the
    scenario runner's worker processes skip the expensive stages.
    """
    profile = profile or get_profile()
    cache = _bundle_cache()
    cache_key = profile_token(profile)
    if not force_retrain and cache_key in cache:
        return cache[cache_key]

    seed_everything(profile.seed)
    train_loader, test_loader, gbo_loader = build_loaders(profile)
    model = build_model(profile)

    checkpoint = _checkpoint_path(profile)
    loaded = False
    metadata = None
    if use_disk_cache and not force_retrain and os.path.exists(checkpoint):
        try:
            metadata = load_checkpoint(checkpoint, model)
            loaded = True
            LOGGER.info("loaded pre-trained weights from %s", checkpoint)
        except (KeyError, ValueError) as error:
            LOGGER.warning("ignoring stale checkpoint %s (%s)", checkpoint, error)
            # A failed (possibly partial) load must not leak into the
            # retrain: rebuild the model so pre-training starts from the
            # seeded initialisation, exactly as on a cache miss.
            model = build_model(profile)

    if not loaded:
        LOGGER.info(
            "pre-training %s model for profile %r (%d epochs)",
            profile.model,
            profile.name,
            profile.pretrain_epochs,
        )
        pretrain_model(
            model,
            train_loader,
            val_loader=None,
            config=PretrainConfig(
                epochs=profile.pretrain_epochs, learning_rate=profile.pretrain_lr
            ),
        )
        if use_disk_cache:
            save_checkpoint(checkpoint, model, metadata={"profile": profile.name})

    apply_config(model, SimConfig(mode="clean"))
    clean_accuracy = None
    if metadata is not None and metadata.get("clean_accuracy_num_test") == profile.num_test:
        # The token excludes eval-only fields, so the cached measurement is
        # only valid if it was taken on this profile's test-set size.
        clean_accuracy = metadata.get("clean_accuracy")
    if clean_accuracy is None:
        clean_accuracy = evaluate_accuracy(model, test_loader)
        if use_disk_cache and os.path.exists(checkpoint):
            # Remember the measurement so later loads (e.g. scenario-runner
            # workers) skip the evaluation pass entirely.
            update_checkpoint_metadata(
                checkpoint,
                {
                    "clean_accuracy": clean_accuracy,
                    "clean_accuracy_num_test": profile.num_test,
                },
            )
    clean_accuracy = float(clean_accuracy)
    LOGGER.info("clean accuracy for profile %r: %.2f%%", profile.name, clean_accuracy)

    bundle = ExperimentBundle(
        profile=profile,
        model=model,
        train_loader=train_loader,
        test_loader=test_loader,
        gbo_loader=gbo_loader,
        clean_accuracy=clean_accuracy,
        pretrained_snapshot=model.state_dict(),
    )
    cache[cache_key] = bundle
    return bundle


def cached_clean_accuracy(profile: ExperimentProfile) -> Optional[float]:
    """The clean accuracy recorded in the profile's checkpoint metadata.

    Lets read-only consumers (the store-driven report builder) avoid loading
    — or worse, pre-training — the model just to label a report header.
    Returns ``None`` when no cached measurement exists.
    """
    import json

    from repro.utils.serialization import load_metadata

    try:
        metadata = load_metadata(_checkpoint_path(profile))
    except (OSError, json.JSONDecodeError):
        return None
    if not metadata or "clean_accuracy" not in metadata:
        return None
    if metadata.get("clean_accuracy_num_test") != profile.num_test:
        return None  # measured on a differently sized test set
    return float(metadata["clean_accuracy"])


def ensure_checkpoint_on_disk(bundle: ExperimentBundle) -> str:
    """Make sure a bundle's pre-trained weights are cached on disk.

    Worker processes rebuild their own bundle from the disk cache; when the
    parent's bundle was created with ``use_disk_cache=False`` the checkpoint
    may not exist yet.  Returns the checkpoint path.
    """
    checkpoint = _checkpoint_path(bundle.profile)
    if not os.path.exists(checkpoint):
        state = dict(bundle.pretrained_snapshot) or bundle.model.state_dict()
        from repro.utils.serialization import save_state

        save_state(
            checkpoint,
            state,
            metadata={
                "profile": bundle.profile.name,
                "clean_accuracy": bundle.clean_accuracy,
                "clean_accuracy_num_test": bundle.profile.num_test,
            },
        )
    return checkpoint


def evict_bundle(token: str) -> bool:
    """Drop one cached bundle by its profile token; ``True`` if it was cached.

    Lets bounded holders (``repro.serve``'s model pool) actually free the
    model/data memory on eviction — popping only their own reference while
    the context's cache still pins the bundle would make every "eviction" a
    no-op.  Keyed access goes through the current execution context, so the
    pool never reaches into module internals.  The on-disk checkpoint is
    untouched, so a later :func:`get_pretrained_bundle` rebuilds cheaply.
    """
    return _bundle_cache().pop(token, None) is not None


def clear_bundle_cache() -> None:
    """Drop the current context's cached bundles (used by tests)."""
    _bundle_cache().clear()
