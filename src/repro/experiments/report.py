"""Markdown report generation for experiment results.

Turns the result dataclasses of the experiment drivers into the markdown
tables used by ``EXPERIMENTS.md``, so the documented numbers can be
regenerated mechanically from a benchmark run instead of being copied by
hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.fig1b import Fig1bResult
from repro.experiments.fig2 import Fig2Result
from repro.experiments.table1 import PAPER_CLEAN_ACCURACY, Table1Result
from repro.experiments.table2 import Table2Result


def _markdown_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(value: Optional[float], digits: int = 2) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def fig1b_markdown(result: Fig1bResult) -> str:
    """Markdown table of the Fig. 1(b) noise-variance series."""
    rows = [
        (int(bits), f"{slicing:.4f}", f"{thermometer:.4f}")
        for bits, slicing, thermometer in zip(result.bits, result.bit_slicing, result.thermometer)
    ]
    return _markdown_table(["bits", "bit slicing (norm. var)", "thermometer (norm. var)"], rows)


def fig2_markdown(result: Fig2Result) -> str:
    """Markdown table of the layer-wise sensitivity analysis."""
    rows = [
        (entry.layer_name, _fmt(entry.accuracy))
        for entry in result.sensitivities
        if entry.layer_index >= 0
    ]
    table = _markdown_table(["target layer", "accuracy %"], rows)
    return (
        f"Clean accuracy: {result.clean_accuracy:.2f} % — noise sigma {result.sigma} "
        f"injected into one layer at a time.\n\n{table}"
    )


def table1_markdown(result: Table1Result) -> str:
    """Markdown table of the reproduced Table I with paper reference columns."""
    rows = []
    for row in result.rows:
        rows.append(
            (
                row.method,
                _fmt(row.sigma, 1),
                _fmt(row.paper_sigma, 0),
                _fmt(row.average_pulses),
                _fmt(row.accuracy),
                _fmt(row.paper_accuracy),
                _fmt(row.paper_average_pulses),
                str(row.schedule),
            )
        )
    table = _markdown_table(
        [
            "method",
            "sigma (ours)",
            "sigma (paper)",
            "avg pulses",
            "accuracy %",
            "paper acc %",
            "paper avg pulses",
            "schedule",
        ],
        rows,
    )
    return (
        f"Clean accuracy: {result.clean_accuracy:.2f} % "
        f"(paper: {PAPER_CLEAN_ACCURACY} %).\n\n{table}"
    )


def table2_markdown(result: Table2Result) -> str:
    """Markdown table of the reproduced Table II with paper reference columns."""
    rows = []
    for row in result.rows:
        rows.append(
            (
                row.method,
                _fmt(row.sigma, 1),
                _fmt(row.paper_sigma, 0),
                _fmt(row.average_pulses),
                _fmt(row.accuracy),
                _fmt(row.paper_accuracy),
            )
        )
    table = _markdown_table(
        ["method", "sigma (ours)", "sigma (paper)", "avg pulses", "accuracy %", "paper acc %"],
        rows,
    )
    return f"Clean accuracy: {result.clean_accuracy:.2f} %.\n\n{table}"


def full_report(
    fig1b: Optional[Fig1bResult] = None,
    fig2: Optional[Fig2Result] = None,
    table1: Optional[Table1Result] = None,
    table2: Optional[Table2Result] = None,
    title: str = "Reproduction report",
) -> str:
    """Assemble a complete markdown report from whichever results are given."""
    sections: List[str] = [f"# {title}"]
    if fig1b is not None:
        sections.append("## Fig. 1(b) — encoding noise variance\n\n" + fig1b_markdown(fig1b))
    if fig2 is not None:
        sections.append("## Fig. 2 — layer-wise noise sensitivity\n\n" + fig2_markdown(fig2))
    if table1 is not None:
        sections.append("## Table I — Baseline / PLA / GBO\n\n" + table1_markdown(table1))
    if table2 is not None:
        sections.append("## Table II — synergy with NIA\n\n" + table2_markdown(table2))
    return "\n\n".join(sections) + "\n"


def write_report(path: str, **results) -> str:
    """Write :func:`full_report` to ``path`` and return the rendered text."""
    text = full_report(**results)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
