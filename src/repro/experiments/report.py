"""Markdown report generation for experiment results.

Turns the result dataclasses of the experiment drivers into the markdown
tables used by ``EXPERIMENTS.md``, so the documented numbers can be
regenerated mechanically from a benchmark run instead of being copied by
hand.

Since the scenario runner landed, reports can also be built straight from
the on-disk result store (:func:`build_report_from_store`): every registered
experiment whose grid is fully present in the store is assembled and
rendered — no recomputation, so ``python -m repro.experiments report``
after an (even interrupted, then resumed) ``run all`` is instant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.fig1b import Fig1bResult
from repro.experiments.fig2 import Fig2Result
from repro.experiments.table1 import PAPER_CLEAN_ACCURACY, Table1Result
from repro.experiments.table2 import Table2Result


def _markdown_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fmt(value: Optional[float], digits: int = 2) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def fig1b_markdown(result: Fig1bResult) -> str:
    """Markdown table of the Fig. 1(b) noise-variance series."""
    rows = [
        (int(bits), f"{slicing:.4f}", f"{thermometer:.4f}")
        for bits, slicing, thermometer in zip(result.bits, result.bit_slicing, result.thermometer)
    ]
    return _markdown_table(["bits", "bit slicing (norm. var)", "thermometer (norm. var)"], rows)


def fig2_markdown(result: Fig2Result) -> str:
    """Markdown table of the layer-wise sensitivity analysis."""
    rows = [
        (entry.layer_name, _fmt(entry.accuracy))
        for entry in result.sensitivities
        if entry.layer_index >= 0
    ]
    table = _markdown_table(["target layer", "accuracy %"], rows)
    return (
        f"Clean accuracy: {result.clean_accuracy:.2f} % — noise sigma {result.sigma} "
        f"injected into one layer at a time.\n\n{table}"
    )


def table1_markdown(result: Table1Result) -> str:
    """Markdown table of the reproduced Table I with paper reference columns."""
    rows = []
    for row in result.rows:
        rows.append(
            (
                row.method,
                _fmt(row.sigma, 1),
                _fmt(row.paper_sigma, 0),
                _fmt(row.average_pulses),
                _fmt(row.accuracy),
                _fmt(row.paper_accuracy),
                _fmt(row.paper_average_pulses),
                str(row.schedule),
            )
        )
    table = _markdown_table(
        [
            "method",
            "sigma (ours)",
            "sigma (paper)",
            "avg pulses",
            "accuracy %",
            "paper acc %",
            "paper avg pulses",
            "schedule",
        ],
        rows,
    )
    return (
        f"Clean accuracy: {result.clean_accuracy:.2f} % "
        f"(paper: {PAPER_CLEAN_ACCURACY} %).\n\n{table}"
    )


def table2_markdown(result: Table2Result) -> str:
    """Markdown table of the reproduced Table II with paper reference columns."""
    rows = []
    for row in result.rows:
        rows.append(
            (
                row.method,
                _fmt(row.sigma, 1),
                _fmt(row.paper_sigma, 0),
                _fmt(row.average_pulses),
                _fmt(row.accuracy),
                _fmt(row.paper_accuracy),
            )
        )
    table = _markdown_table(
        ["method", "sigma (ours)", "sigma (paper)", "avg pulses", "accuracy %", "paper acc %"],
        rows,
    )
    return f"Clean accuracy: {result.clean_accuracy:.2f} %.\n\n{table}"


def encoding_ablation_markdown(result) -> str:
    """Markdown table of the A1 encoding-scheme ablation."""
    rows = [
        (row.encoding, _fmt(row.sigma, 1), _fmt(row.effective_noise_std, 3), _fmt(row.accuracy))
        for row in result.rows
    ]
    table = _markdown_table(
        ["encoding", "sigma", "accumulated noise std", "accuracy %"], rows
    )
    return f"Activation levels: {result.levels}.\n\n{table}"


def pla_error_markdown(rows) -> str:
    """Markdown table of the A2 PLA approximation-error ablation."""
    body = [
        (row.num_pulses, row.mode, f"{row.mean_abs_error:.4f}") for row in rows
    ]
    return _markdown_table(["pulses", "rounding mode", "mean abs error"], body)


def gamma_tradeoff_markdown(rows) -> str:
    """Markdown table of the A3 gamma trade-off ablation."""
    body = [
        (f"{row.gamma:.4g}", _fmt(row.average_pulses), _fmt(row.accuracy), str(row.schedule))
        for row in rows
    ]
    return _markdown_table(["gamma", "avg pulses", "accuracy %", "schedule"], body)


#: Section metadata per registry identifier: (title, renderer).
_SECTIONS = {
    "fig1b": ("Fig. 1(b) — encoding noise variance", fig1b_markdown),
    "fig2": ("Fig. 2 — layer-wise noise sensitivity", fig2_markdown),
    "table1": ("Table I — Baseline / PLA / GBO", table1_markdown),
    "table2": ("Table II — synergy with NIA", table2_markdown),
    "ablation_encoding": ("Ablation A1 — encoding schemes end to end", encoding_ablation_markdown),
    "ablation_pla_error": ("Ablation A2 — PLA approximation error", pla_error_markdown),
    "ablation_gamma": ("Ablation A3 — GBO gamma trade-off", gamma_tradeoff_markdown),
}


def full_report(
    fig1b: Optional[Fig1bResult] = None,
    fig2: Optional[Fig2Result] = None,
    table1: Optional[Table1Result] = None,
    table2: Optional[Table2Result] = None,
    title: str = "Reproduction report",
    **extra_sections: Any,
) -> str:
    """Assemble a complete markdown report from whichever results are given.

    ``extra_sections`` accepts any further registry identifier
    (``ablation_encoding`` etc.) with its assembled result.
    """
    results: Dict[str, Any] = {
        "fig1b": fig1b,
        "fig2": fig2,
        "table1": table1,
        "table2": table2,
    }
    results.update(extra_sections)
    unknown = [
        key for key, value in results.items() if value is not None and key not in _SECTIONS
    ]
    if unknown:
        # Silently dropping a section would make a run look complete while a
        # whole table is missing from the report.
        raise KeyError(
            f"no report section registered for {sorted(unknown)}; add it to "
            f"repro.experiments.report._SECTIONS"
        )
    sections: List[str] = [f"# {title}"]
    for identifier, (section_title, renderer) in _SECTIONS.items():
        result = results.get(identifier)
        if result is not None:
            sections.append(f"## {section_title}\n\n" + renderer(result))
    return "\n\n".join(sections) + "\n"


def build_report_from_store(
    store,
    profile=None,
    experiments: Optional[Sequence[str]] = None,
    title: str = "Reproduction report",
    engine: Optional[str] = None,
) -> str:
    """Build a markdown report purely from the scenario result store.

    For every requested registry experiment, the default grid is constructed
    and looked up in ``store``; experiments whose scenarios are all present
    are assembled and rendered, the rest are listed as pending.  Nothing is
    recomputed — this is the read-only face of the scenario runner.  (The
    clean-accuracy header comes from the pre-train checkpoint's metadata;
    only if even that is missing is a real bundle materialised.)
    """
    from types import SimpleNamespace

    from repro.experiments.common import cached_clean_accuracy, get_pretrained_bundle
    from repro.experiments.profiles import ExperimentProfile, get_profile
    from repro.experiments.registry import EXPERIMENTS, pin_grid_engine

    if not isinstance(profile, ExperimentProfile):
        profile = get_profile(profile)  # None -> REPRO_PROFILE / "fast"
    identifiers = list(experiments) if experiments else list(EXPERIMENTS)
    rendered: Dict[str, Any] = {}
    pending: List[str] = []
    bundle = None
    for identifier in identifiers:
        spec = EXPERIMENTS[identifier]
        # The same engine pin `run` applies, so a suite executed under
        # --engine E can be rendered with the matching report --engine E.
        grid = pin_grid_engine(spec.grid(profile), engine)
        results = {}
        complete = True
        for scenario in grid:
            cached = store.get(scenario)
            if cached is None:
                complete = False
                break
            results[scenario.hash] = cached
        if not complete:
            pending.append(identifier)
            continue
        if spec.needs_bundle and bundle is None:
            clean = cached_clean_accuracy(profile)
            if clean is not None:
                # Assemblers only read .profile and .clean_accuracy.
                bundle = SimpleNamespace(profile=profile, clean_accuracy=clean)
            else:
                bundle = get_pretrained_bundle(profile)
        rendered[identifier] = spec.assemble(grid, results, bundle if spec.needs_bundle else None)

    text = full_report(title=title, **rendered)
    if pending:
        text += (
            "\n## Pending\n\nNot yet in the result store (run "
            "`python -m repro.experiments run <id>`): "
            + ", ".join(f"`{identifier}`" for identifier in pending)
            + "\n"
        )
    return text


@dataclass
class SuiteStatus:
    """Completion snapshot of the registered suite against one store.

    ``done`` counts scenarios with a store result, ``claimed`` counts
    not-done scenarios under a live lease (a distributed worker is
    executing them right now), and ``pending`` is everything else.
    """

    total: int = 0
    done: int = 0
    claimed: int = 0
    per_experiment: Dict[str, Tuple[int, int]] = field(default_factory=dict)  # id -> (done, total)

    @property
    def pending(self) -> int:
        return self.total - self.done - self.claimed

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def banner(self) -> str:
        """One-line progress banner for streaming output."""
        detail = ", ".join(
            f"{identifier} {done}/{total}"
            for identifier, (done, total) in self.per_experiment.items()
        )
        return (
            f"> suite progress: {self.done}/{self.total} done · "
            f"{self.claimed} claimed · {self.pending} pending  [{detail}]"
        )


def suite_status(
    store,
    profile=None,
    experiments: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
) -> SuiteStatus:
    """Count done / claimed / pending scenarios of the registered suite.

    Uses the same grid construction as :func:`build_report_from_store`, so
    the banner and the report always describe the same scenario set.
    Claims come from live lease files under the store root (see
    :mod:`repro.distributed.lease`); a store without leases simply reports
    zero claimed.
    """
    from repro.distributed.lease import LeaseManager
    from repro.experiments.profiles import ExperimentProfile, get_profile
    from repro.experiments.registry import EXPERIMENTS, pin_grid_engine

    if not isinstance(profile, ExperimentProfile):
        profile = get_profile(profile)
    identifiers = list(experiments) if experiments else list(EXPERIMENTS)
    live_leases = set(LeaseManager(store.root).live_hashes()) if hasattr(store, "root") else set()
    status = SuiteStatus()
    for identifier in identifiers:
        grid = pin_grid_engine(EXPERIMENTS[identifier].grid(profile), engine)
        done = 0
        for scenario in grid:
            if store.get(scenario) is not None:
                done += 1
            elif scenario.hash in live_leases:
                status.claimed += 1
        status.per_experiment[identifier] = (done, len(grid))
        status.done += done
        status.total += len(grid)
    return status


def follow_report(
    store,
    profile=None,
    experiments: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    title: str = "Reproduction report",
    interval: float = 2.0,
    max_polls: Optional[int] = None,
    sleep=time.sleep,
) -> Iterator[Tuple[str, SuiteStatus]]:
    """Yield ``(markdown, status)`` snapshots until the suite completes.

    The streaming face of :func:`build_report_from_store`: each snapshot is
    the full report re-rendered from whatever the store holds *right now*
    (completed experiments as tables, the rest as pending) with the
    :meth:`SuiteStatus.banner` completion banner appended — so tailing the
    output of ``python -m repro.experiments report --follow`` while N
    distributed workers drain the suite shows tables appearing as their
    grids finish.  Terminates after the first complete snapshot; a reader
    may of course stop earlier.  ``max_polls`` bounds the number of
    snapshots (for callers that poll a suite nothing is executing).
    """
    polls = 0
    while True:
        status = suite_status(store, profile=profile, experiments=experiments, engine=engine)
        text = build_report_from_store(
            store, profile=profile, experiments=experiments, title=title, engine=engine
        )
        yield text + "\n" + status.banner() + "\n", status
        polls += 1
        if status.complete or (max_polls is not None and polls >= max_polls):
            return
        sleep(interval)


def write_report(path: str, **results) -> str:
    """Write :func:`full_report` to ``path`` and return the rendered text."""
    text = full_report(**results)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
