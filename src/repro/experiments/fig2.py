"""Experiment E2 — Fig. 2: layer-wise noise sensitivity.

Injects Gaussian crossbar noise into one encoded layer at a time of the
pre-trained network and records the resulting accuracy, reproducing the
heterogeneous sensitivity profile that motivates per-layer pulse lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.noise_sensitivity import LayerSensitivity, layer_noise_sensitivity
from repro.experiments.common import ExperimentBundle, get_pretrained_bundle
from repro.experiments.profiles import ExperimentProfile


@dataclass
class Fig2Result:
    """Per-layer accuracies with single-layer noise injection."""

    sigma: float
    clean_accuracy: float
    sensitivities: List[LayerSensitivity]

    def accuracy_by_layer(self) -> List[float]:
        """Accuracies in layer order (excluding the clean reference entry)."""
        return [entry.accuracy for entry in self.sensitivities if entry.layer_index >= 0]

    def most_sensitive_layer(self) -> LayerSensitivity:
        """The layer whose noise hurts accuracy the most."""
        noisy_entries = [entry for entry in self.sensitivities if entry.layer_index >= 0]
        return min(noisy_entries, key=lambda entry: entry.accuracy)

    def format_table(self) -> str:
        """Human-readable rendering of the figure's series."""
        lines = [f"clean accuracy: {self.clean_accuracy:.2f}%  (sigma={self.sigma})"]
        lines.append("target layer | accuracy (%)")
        for entry in self.sensitivities:
            if entry.layer_index < 0:
                continue
            lines.append(f"{entry.layer_name:>12} | {entry.accuracy:10.2f}")
        return "\n".join(lines)


def run_fig2(
    profile: Optional[ExperimentProfile] = None,
    bundle: Optional[ExperimentBundle] = None,
    sigma: Optional[float] = None,
) -> Fig2Result:
    """Run the layer-wise sensitivity analysis on the pre-trained model.

    Parameters
    ----------
    profile:
        Experiment profile (ignored when an explicit ``bundle`` is passed).
    bundle:
        Reuse an already pre-trained bundle (the benchmark harness shares one
        bundle across all experiments).
    sigma:
        Noise level for the injected layer; defaults to the middle entry of
        the profile's sigma sweep, matching the "moderate noise" setting of
        the paper's Fig. 2.
    """
    bundle = bundle or get_pretrained_bundle(profile)
    profile = bundle.profile
    sigma = sigma if sigma is not None else profile.sigmas[len(profile.sigmas) // 2]
    sensitivities = layer_noise_sensitivity(
        bundle.model,
        bundle.test_loader,
        sigma=sigma,
        pulses=profile.base_pulses,
        sigma_relative_to_fan_in=profile.noise_relative_to_fan_in,
        include_clean=False,
    )
    return Fig2Result(
        sigma=sigma, clean_accuracy=bundle.clean_accuracy, sensitivities=sensitivities
    )
