"""Experiment E2 — Fig. 2: layer-wise noise sensitivity.

Injects Gaussian crossbar noise into one encoded layer at a time of the
pre-trained network and records the resulting accuracy, reproducing the
heterogeneous sensitivity profile that motivates per-layer pulse lengths.

Expressed as a grid on the scenario runner: one scenario per target layer,
each evaluating the network with only that layer noisy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.core.noise_sensitivity import LayerSensitivity
from repro.experiments.common import ExperimentBundle, get_pretrained_bundle
from repro.experiments.profiles import ExperimentProfile
from repro.sim import SimConfig, configure
from repro.training.evaluate import evaluate_accuracy


@dataclass
class Fig2Result:
    """Per-layer accuracies with single-layer noise injection."""

    sigma: float
    clean_accuracy: float
    sensitivities: List[LayerSensitivity]

    def accuracy_by_layer(self) -> List[float]:
        """Accuracies in layer order (excluding the clean reference entry)."""
        return [entry.accuracy for entry in self.sensitivities if entry.layer_index >= 0]

    def most_sensitive_layer(self) -> LayerSensitivity:
        """The layer whose noise hurts accuracy the most."""
        noisy_entries = [entry for entry in self.sensitivities if entry.layer_index >= 0]
        return min(noisy_entries, key=lambda entry: entry.accuracy)

    def format_table(self) -> str:
        """Human-readable rendering of the figure's series."""
        lines = [f"clean accuracy: {self.clean_accuracy:.2f}%  (sigma={self.sigma})"]
        lines.append("target layer | accuracy (%)")
        for entry in self.sensitivities:
            if entry.layer_index < 0:
                continue
            lines.append(f"{entry.layer_name:>12} | {entry.accuracy:10.2f}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenario grid
# ---------------------------------------------------------------------------
def encoded_layer_count(profile: ExperimentProfile) -> int:
    """Encoded-layer count of the profile's architecture.

    Derived from the model itself (the single source of truth, so grids
    built from a profile and grids built from a live bundle can never
    disagree) and memoised per architecture shape, because the registry and
    the report builder construct fig2 grids without a bundle at hand.  The
    memo lives on the current execution context's bounded cache: unusual
    shapes (profile overrides sweeping width/size) age out instead of
    accumulating for the life of the process.
    """
    from repro.context import current_context

    cache = current_context().bounded_cache("fig2_layer_counts", max_entries=8)
    key = (profile.model, profile.width_multiplier, profile.image_size,
           profile.num_classes, profile.activation_levels)
    if key not in cache:
        from repro.experiments.common import build_model

        cache.put(key, build_model(profile).num_encoded_layers())
    return cache.get(key)


def _resolve_sigma(profile: ExperimentProfile, sigma: Optional[float]) -> float:
    """Default to the middle of the profile's sweep ("moderate noise")."""
    if sigma is not None:
        return float(sigma)
    return float(profile.sigmas[len(profile.sigmas) // 2])


def fig2_grid(
    profile: ExperimentProfile,
    sigma: Optional[float] = None,
    num_layers: Optional[int] = None,
    engine=None,
):
    """One scenario per encoded layer of the profile's network."""
    from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec, profile_axes

    if num_layers is None:
        num_layers = encoded_layer_count(profile)
    sigma = _resolve_sigma(profile, sigma)
    axes = profile_axes(profile, engine)
    specs = tuple(
        ScenarioSpec.create(
            experiment="fig2",
            method=f"layer{index}",
            sigma=sigma,
            layer_index=index,
            **axes,
        )
        for index in range(num_layers)
    )
    return ScenarioGrid(name="fig2", specs=specs)


def execute_fig2_scenario(ctx) -> Dict[str, Any]:
    """Accuracy of the pre-trained model with one layer made noisy."""
    spec = ctx.spec
    profile = ctx.profile
    target_index = int(spec.param("layer_index"))
    model = ctx.model()
    layers = list(model.encoded_layers())
    names = (
        list(model.encoded_layer_names())
        if hasattr(model, "encoded_layer_names")
        else [f"layer{i}" for i in range(len(layers))]
    )
    target = layers[target_index]
    # Only the target layer is made noisy; the session restores it to the
    # model-wide clean baseline when the evaluation completes.
    with configure(target, ctx.noisy_sim(pulses=profile.base_pulses)):
        accuracy = evaluate_accuracy(model, ctx.test_loader)
    return {
        "layer_index": target_index,
        "layer_name": names[target_index],
        "accuracy": accuracy,
    }


def assemble_fig2(
    grid, results: Mapping[str, Mapping[str, Any]], bundle: ExperimentBundle
) -> Fig2Result:
    """Fold per-layer scenario results back into the figure."""
    rows = sorted(
        (results[spec.hash] for spec in grid), key=lambda row: row["layer_index"]
    )
    sigma = next(iter(grid)).sigma
    return Fig2Result(
        sigma=sigma,
        clean_accuracy=bundle.clean_accuracy,
        sensitivities=[
            LayerSensitivity(
                layer_index=int(row["layer_index"]),
                layer_name=row["layer_name"],
                accuracy=row["accuracy"],
            )
            for row in rows
        ],
    )


def run_fig2(
    profile: Optional[ExperimentProfile] = None,
    bundle: Optional[ExperimentBundle] = None,
    sigma: Optional[float] = None,
    engine=None,
    workers: int = 0,
    store=None,
    sim: Optional[SimConfig] = None,
) -> Fig2Result:
    """Run the layer-wise sensitivity analysis on the pre-trained model.

    Parameters
    ----------
    profile:
        Experiment profile (ignored when an explicit ``bundle`` is passed).
    bundle:
        Reuse an already pre-trained bundle (the benchmark harness shares one
        bundle across all experiments).
    sigma:
        Noise level for the injected layer; defaults to the middle entry of
        the profile's sigma sweep, matching the "moderate noise" setting of
        the paper's Fig. 2.
    sim:
        Simulation config for the evaluations; ``None`` follows the one
        engine-resolution rule.
    engine:
        Deprecated: pass ``sim=SimConfig(engine=...)`` instead.
    workers / store:
        Scenario-runner execution controls (see
        :func:`repro.experiments.runner.run_grid`).
    """
    from repro.experiments.runner.executor import run_grid
    from repro.experiments.table1 import resolve_driver_engines

    engine, _ = resolve_driver_engines(engine, None, sim, None)
    bundle = bundle or get_pretrained_bundle(profile)
    profile = profile or bundle.profile
    grid = fig2_grid(
        profile,
        sigma=sigma,
        num_layers=bundle.model.num_encoded_layers(),
        engine=engine,
    )
    outcome = run_grid(grid, workers=workers, store=store, bundle=bundle)
    return assemble_fig2(grid, outcome.results, bundle)
