"""Experiment E1 — Fig. 1(b): encoding noise variance versus bit width.

Reproduces the analytic curves of Fig. 1(b) (normalised noise variance of
bit slicing vs thermometer coding as the number of information bits grows)
and cross-checks a few points with a Monte-Carlo simulation of the actual
crossbar + encoder stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.crossbar.analysis import (
    bit_slicing_noise_variance,
    monte_carlo_noise_variance,
    noise_variance_table,
    thermometer_noise_variance,
)
from repro.crossbar.encoding import BitSlicingEncoder, ThermometerEncoder
from repro.tensor.random import RandomState


@dataclass
class Fig1bResult:
    """Analytic series plus Monte-Carlo spot checks."""

    bits: List[float]
    bit_slicing: List[float]
    thermometer: List[float]
    monte_carlo: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for tabular printing."""
        rows = []
        for index, bit in enumerate(self.bits):
            rows.append(
                {
                    "bits": bit,
                    "bit_slicing": self.bit_slicing[index],
                    "thermometer": self.thermometer[index],
                }
            )
        return rows

    def format_table(self) -> str:
        """Human-readable rendering of the figure's series."""
        lines = ["bits | bit-slicing var (norm) | thermometer var (norm)"]
        for row in self.as_rows():
            lines.append(
                f"{int(row['bits']):4d} | {row['bit_slicing']:22.4f} | {row['thermometer']:21.4f}"
            )
        return "\n".join(lines)


def run_fig1b(
    bit_range: Sequence[int] = range(1, 9),
    monte_carlo_bits: Sequence[int] = (2, 3),
    sigma: float = 1.0,
    num_trials: int = 200,
    seed: int = 0,
) -> Fig1bResult:
    """Compute the Fig. 1(b) series and Monte-Carlo validation points.

    Parameters
    ----------
    bit_range:
        Information bit widths to evaluate (the paper plots 1..8).
    monte_carlo_bits:
        Bit widths at which to empirically validate the formulas with the
        full crossbar + encoder simulation (kept small: thermometer coding
        at ``b`` bits needs ``2^b - 1`` simulated pulses per MVM).
    sigma:
        Per-pulse noise standard deviation.
    num_trials:
        Monte-Carlo trials per validation point.
    """
    table = noise_variance_table(bit_range=bit_range, normalise=True)
    result = Fig1bResult(
        bits=table["bits"],
        bit_slicing=table["bit_slicing"],
        thermometer=table["thermometer"],
    )
    rng = RandomState(seed)
    baseline = bit_slicing_noise_variance(1, sigma=sigma)
    monte_carlo: Dict[str, Dict[int, float]] = {"bit_slicing": {}, "thermometer": {}}
    for bits in monte_carlo_bits:
        slicing_var = monte_carlo_noise_variance(
            BitSlicingEncoder(bits), sigma=sigma, num_trials=num_trials, rng=rng
        )
        thermo_var = monte_carlo_noise_variance(
            ThermometerEncoder(2**bits - 1), sigma=sigma, num_trials=num_trials, rng=rng
        )
        monte_carlo["bit_slicing"][int(bits)] = slicing_var / baseline
        monte_carlo["thermometer"][int(bits)] = thermo_var / baseline
    result.monte_carlo = monte_carlo
    return result
