"""Experiment E1 — Fig. 1(b): encoding noise variance versus bit width.

Reproduces the analytic curves of Fig. 1(b) (normalised noise variance of
bit slicing vs thermometer coding as the number of information bits grows)
and cross-checks a few points with a Monte-Carlo simulation of the actual
crossbar + encoder stack.

Expressed as a grid on the scenario runner: one scenario per bit width
(each computes both analytic values, plus the Monte-Carlo validation when
requested for that width), assembled back into :class:`Fig1bResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from repro.crossbar.analysis import (
    bit_slicing_noise_variance,
    monte_carlo_noise_variance,
    thermometer_noise_variance,
)
from repro.crossbar.encoding import BitSlicingEncoder, ThermometerEncoder
from repro.tensor.random import RandomState


@dataclass
class Fig1bResult:
    """Analytic series plus Monte-Carlo spot checks."""

    bits: List[float]
    bit_slicing: List[float]
    thermometer: List[float]
    monte_carlo: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for tabular printing."""
        rows = []
        for index, bit in enumerate(self.bits):
            rows.append(
                {
                    "bits": bit,
                    "bit_slicing": self.bit_slicing[index],
                    "thermometer": self.thermometer[index],
                }
            )
        return rows

    def format_table(self) -> str:
        """Human-readable rendering of the figure's series."""
        lines = ["bits | bit-slicing var (norm) | thermometer var (norm)"]
        for row in self.as_rows():
            lines.append(
                f"{int(row['bits']):4d} | {row['bit_slicing']:22.4f} | {row['thermometer']:21.4f}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenario grid
# ---------------------------------------------------------------------------
def fig1b_grid(
    bit_range: Sequence[int] = range(1, 9),
    monte_carlo_bits: Sequence[int] = (2, 3),
    sigma: float = 1.0,
    num_trials: int = 200,
    seed: int = 0,
    engine=None,
):
    """One scenario per bit width of the Fig. 1(b) sweep.

    The Monte-Carlo validation drives real noisy crossbar reads, whose RNG
    consumption is engine-dependent, so the resolved engine is part of every
    spec, following the one precedence rule of
    :func:`repro.sim.resolve_engine_name` — results simulated under one
    backend never answer the other's store lookups.
    """
    from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec
    from repro.sim import resolve_engine_name

    engine = resolve_engine_name(engine, None)
    monte_carlo_bits = {int(b) for b in monte_carlo_bits}
    specs = tuple(
        ScenarioSpec.create(
            experiment="fig1b",
            method=f"bits{int(bits)}",
            seed=seed,
            engine=engine,
            bits=int(bits),
            sigma_pulse=float(sigma),
            monte_carlo=int(bits) in monte_carlo_bits,
            num_trials=int(num_trials),
        )
        for bits in bit_range
    )
    return ScenarioGrid(name="fig1b", specs=specs)


def execute_fig1b_scenario(ctx) -> Dict[str, Any]:
    """Analytic (and optionally Monte-Carlo) noise variance at one bit width."""
    spec = ctx.spec
    bits = int(spec.param("bits"))
    sigma = float(spec.param("sigma_pulse", 1.0))
    # Fig. 1(b) normalises to the 1-bit / single-pulse baseline.
    norm = bit_slicing_noise_variance(1)
    result: Dict[str, Any] = {
        "bits": bits,
        "bit_slicing": bit_slicing_noise_variance(bits) / norm,
        "thermometer": thermometer_noise_variance(2**bits - 1) / norm,
    }
    if spec.param("monte_carlo", False):
        num_trials = int(spec.param("num_trials", 200))
        rng = RandomState(ctx.scenario_seed())
        engine = ctx.engine_name()
        baseline = bit_slicing_noise_variance(1, sigma=sigma)
        slicing_var = monte_carlo_noise_variance(
            BitSlicingEncoder(bits), sigma=sigma, num_trials=num_trials, rng=rng,
            engine=engine,
        )
        thermo_var = monte_carlo_noise_variance(
            ThermometerEncoder(2**bits - 1), sigma=sigma, num_trials=num_trials,
            rng=rng, engine=engine,
        )
        result["monte_carlo"] = {
            "bit_slicing": slicing_var / baseline,
            "thermometer": thermo_var / baseline,
        }
    return result


def assemble_fig1b(grid, results: Mapping[str, Mapping[str, Any]]) -> Fig1bResult:
    """Fold per-bit scenario results back into the figure's series."""
    ordered = sorted(
        (results[spec.hash] for spec in grid), key=lambda row: row["bits"]
    )
    monte_carlo: Dict[str, Dict[int, float]] = {"bit_slicing": {}, "thermometer": {}}
    for row in ordered:
        if "monte_carlo" in row:
            for scheme in ("bit_slicing", "thermometer"):
                monte_carlo[scheme][int(row["bits"])] = row["monte_carlo"][scheme]
    return Fig1bResult(
        bits=[float(row["bits"]) for row in ordered],
        bit_slicing=[row["bit_slicing"] for row in ordered],
        thermometer=[row["thermometer"] for row in ordered],
        monte_carlo=monte_carlo,
    )


def run_fig1b(
    bit_range: Sequence[int] = range(1, 9),
    monte_carlo_bits: Sequence[int] = (2, 3),
    sigma: float = 1.0,
    num_trials: int = 200,
    seed: int = 0,
    engine=None,
    workers: int = 0,
    store=None,
    sim=None,
) -> Fig1bResult:
    """Compute the Fig. 1(b) series and Monte-Carlo validation points.

    Parameters
    ----------
    bit_range:
        Information bit widths to evaluate (the paper plots 1..8).
    monte_carlo_bits:
        Bit widths at which to empirically validate the formulas with the
        full crossbar + encoder simulation (kept small: thermometer coding
        at ``b`` bits needs ``2^b - 1`` simulated pulses per MVM).
    sigma:
        Per-pulse noise standard deviation.
    num_trials:
        Monte-Carlo trials per validation point.
    sim:
        Simulation config for the Monte-Carlo validation's crossbar reads;
        ``None`` follows the one engine-resolution rule.  The analytic
        series is engine-independent.
    engine:
        Deprecated: pass ``sim=SimConfig(engine=...)`` instead.
    workers / store:
        Scenario-runner execution controls (see
        :func:`repro.experiments.runner.run_grid`).
    """
    from repro.experiments.runner.executor import run_grid
    from repro.experiments.table1 import resolve_driver_engines

    engine, _ = resolve_driver_engines(engine, None, sim, None)
    grid = fig1b_grid(
        bit_range=bit_range,
        monte_carlo_bits=monte_carlo_bits,
        sigma=sigma,
        num_trials=num_trials,
        seed=seed,
        engine=engine,
    )
    outcome = run_grid(grid, workers=workers, store=store)
    return assemble_fig1b(grid, outcome.results)
