"""Quantisation-aware layers.

``QuantConv2d`` and ``QuantLinear`` carry full-precision shadow weights but
always compute with their binarised values, which is how the BWNN is
pre-trained before being mapped to the crossbar.
"""

from __future__ import annotations

from typing import Optional

from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.quant.binary import BinaryWeightQuantizer, ScaleMode
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.random import RandomState


class QuantConv2d(Conv2d):
    """Conv2d whose forward pass uses binarised weights (STE gradients)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = False,
        scale_mode: ScaleMode = "none",
        rng: Optional[RandomState] = None,
    ):
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, bias=bias, rng=rng
        )
        self.quantizer = BinaryWeightQuantizer(scale_mode=scale_mode)

    def binary_weight(self) -> Tensor:
        """The binarised weight tensor actually used by the forward pass."""
        return self.quantizer(self.weight)

    def forward(self, x: Tensor) -> Tensor:
        batch, _, height, width = x.shape
        out_h = F.conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(width, self.kernel_size, self.stride, self.padding)
        cols = F.im2col_tensor(x, self.kernel_size, self.stride, self.padding)
        kernel_matrix = self.binary_weight().reshape(self.out_channels, -1)
        out = kernel_matrix.matmul(cols)
        # im2col orders columns spatial-major (out_h, out_w, batch); undo that.
        out = out.reshape(self.out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    def __repr__(self) -> str:
        return (
            f"QuantConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}, "
            f"scale_mode={self.quantizer.scale_mode!r})"
        )


class QuantLinear(Linear):
    """Linear layer whose forward pass uses binarised weights (STE gradients)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = False,
        scale_mode: ScaleMode = "none",
        rng: Optional[RandomState] = None,
    ):
        super().__init__(in_features, out_features, bias=bias, rng=rng)
        self.quantizer = BinaryWeightQuantizer(scale_mode=scale_mode)

    def binary_weight(self) -> Tensor:
        """The binarised weight tensor actually used by the forward pass."""
        return self.quantizer(self.weight)

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.binary_weight().transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"QuantLinear(in_features={self.in_features}, out_features={self.out_features}, "
            f"scale_mode={self.quantizer.scale_mode!r})"
        )
