"""Quantisation substrate: binary weights and multi-level activations.

The paper maps Binary-Weight Neural Networks (BWNNs) onto binary memristive
crossbars: weights are constrained to {-1, +1} (BinaryConnect-style sign
quantisation with a straight-through estimator) and activations are bounded
by Tanh and quantised to 9 levels, which are then streamed as 8 thermometer
pulses (Section II-A / IV-A).
"""

from repro.quant.binary import binarize, BinaryWeightQuantizer
from repro.quant.activation import (
    quantize_uniform,
    levels_to_pulses,
    pulses_to_levels,
    ActivationQuantizer,
)
from repro.quant.qat import QuantConv2d, QuantLinear

__all__ = [
    "binarize",
    "BinaryWeightQuantizer",
    "quantize_uniform",
    "levels_to_pulses",
    "pulses_to_levels",
    "ActivationQuantizer",
    "QuantConv2d",
    "QuantLinear",
]
