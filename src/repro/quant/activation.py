"""Multi-level activation quantisation in ``[-1, 1]``.

The paper quantises activations to 9 levels during pre-training
(Section IV-A); a 9-level value in ``[-1, 1]`` maps exactly onto an 8-pulse
thermometer code (the number of +1 pulses among the 8 equals the level
index).  The quantiser uses a straight-through estimator so it can be active
during pre-training.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.tensor.dtype import resolve_dtype


def quantize_uniform(x: Tensor, levels: int = 9) -> Tensor:
    """Quantise a ``[-1, 1]`` tensor to ``levels`` uniformly spaced values.

    Values outside ``[-1, 1]`` are clipped first.  Gradients pass through
    the quantiser unchanged (STE), but respect the clip.
    """
    if levels < 2:
        raise ValueError(f"levels must be at least 2, got {levels}")
    clipped = x.clip(-1.0, 1.0)
    steps = levels - 1
    quantised = np.round((clipped.data + 1.0) * 0.5 * steps) / steps * 2.0 - 1.0
    return clipped.with_data(quantised)


def levels_to_pulses(values: np.ndarray, num_pulses: int) -> np.ndarray:
    """Convert quantised ``[-1, 1]`` values to the count of positive pulses.

    With ``num_pulses`` thermometer pulses, a value ``v`` is represented by
    ``k`` pulses at +1 and ``num_pulses - k`` at -1 where
    ``k = round((v + 1) / 2 * num_pulses)``.
    """
    if num_pulses < 1:
        raise ValueError(f"num_pulses must be positive, got {num_pulses}")
    counts = np.round((np.asarray(values) + 1.0) * 0.5 * num_pulses)
    return np.clip(counts, 0, num_pulses).astype(np.int64)


def pulses_to_levels(positive_counts: np.ndarray, num_pulses: int) -> np.ndarray:
    """Convert positive-pulse counts back to the represented ``[-1, 1]`` value."""
    counts = np.asarray(positive_counts, dtype=resolve_dtype())
    return 2.0 * counts / float(num_pulses) - 1.0


class ActivationQuantizer(Module):
    """Module form of :func:`quantize_uniform`.

    Parameters
    ----------
    levels:
        Number of quantisation levels (the paper uses 9).
    enabled:
        When ``False`` the module is an identity; used to compare quantised
        and full-precision baselines.
    """

    def __init__(self, levels: int = 9, enabled: bool = True):
        super().__init__()
        if levels < 2:
            raise ValueError(f"levels must be at least 2, got {levels}")
        self.levels = levels
        self.enabled = enabled

    @property
    def base_pulses(self) -> int:
        """Thermometer pulse count that exactly represents ``levels`` levels."""
        return self.levels - 1

    def forward(self, x: Tensor) -> Tensor:
        if not self.enabled:
            return x
        return quantize_uniform(x, levels=self.levels)

    def __repr__(self) -> str:
        return f"ActivationQuantizer(levels={self.levels}, enabled={self.enabled})"
