"""Binary weight quantisation with a straight-through estimator.

Implements BinaryConnect-style quantisation [Courbariaux et al., 2015] as
used by the paper: the forward pass sees ``sign(w)`` (optionally scaled by
the mean absolute weight per output neuron) while the backward pass treats
the quantiser as the identity so full-precision shadow weights keep
receiving gradients.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.tensor import Tensor

ScaleMode = Literal["none", "mean"]


def binary_sign(data: np.ndarray) -> np.ndarray:
    """Deterministic sign with ties mapped to +1 (a zero weight would leave a
    crossbar cell unprogrammed, which binary NVM devices cannot represent)."""
    out = np.sign(data)
    out[out == 0] = 1.0
    return out


def binarize(weight: Tensor, scale_mode: ScaleMode = "none") -> Tensor:
    """Return a binarised view of ``weight`` with STE gradients.

    Parameters
    ----------
    weight:
        Full-precision weight tensor (2-D for linear, 4-D for conv).
    scale_mode:
        ``"none"`` produces strict {-1, +1} values (the paper's setting,
        required for a binary crossbar); ``"mean"`` additionally scales each
        output neuron's row by its mean absolute weight (XNOR-style), which
        is useful for ablations but requires a per-column analog scale.
    """
    signs = binary_sign(weight.data)
    if scale_mode == "mean":
        reduce_axes = tuple(range(1, weight.ndim))
        scale = np.abs(weight.data).mean(axis=reduce_axes, keepdims=True)
        quantised = signs * scale
    elif scale_mode == "none":
        quantised = signs
    else:
        raise ValueError(f"unknown scale_mode {scale_mode!r}")
    return weight.with_data(quantised)


class BinaryWeightQuantizer:
    """Callable object wrapping :func:`binarize` with a fixed configuration."""

    def __init__(self, scale_mode: ScaleMode = "none"):
        if scale_mode not in ("none", "mean"):
            raise ValueError(f"unknown scale_mode {scale_mode!r}")
        self.scale_mode = scale_mode

    def __call__(self, weight: Tensor) -> Tensor:
        return binarize(weight, scale_mode=self.scale_mode)

    def __repr__(self) -> str:
        return f"BinaryWeightQuantizer(scale_mode={self.scale_mode!r})"
