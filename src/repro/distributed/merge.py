"""Store merge: union content-addressed results from N hosts into one store.

Multi-host execution without a shared filesystem runs each host against its
own local store directory and merges afterwards:

    python -m repro.experiments merge hostA/store hostB/store --into combined

The merge is safe *because* the store is content-addressed: a result file's
name is its spec's content hash, and a scenario's result is a deterministic
function of that same spec — so two stores can only ever disagree about a
key if one of them is corrupt or was produced by diverging code.  That case
is a hard error (:class:`MergeConflictError`), never a silent
pick-one: identical payloads are deduplicated, differing payloads abort the
merge before anything else is copied.

Comparison is semantic, not byte-wise, on both entry kinds: result JSON is
compared on its ``spec`` + ``result`` + ``format`` fields (the ``created``
timestamp legitimately differs between hosts), and stage ``.npz`` entries
are compared array-by-array (the zip container embeds write timestamps, the
arrays are what must agree).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.runner.store import ResultStore
from repro.utils.logging import get_logger
from repro.utils.serialization import atomic_write

LOGGER = get_logger("repro.distributed")


class MergeConflictError(RuntimeError):
    """Two stores hold *different* payloads under the same content key.

    By construction (hash-keyed entries, hash-seeded deterministic
    execution) this cannot happen between honest stores; it means one side
    is corrupt or the stores were produced by different code versions.
    Nothing is merged once a conflict is seen.
    """

    def __init__(self, kind: str, key: str, source: str, dest: str):
        self.kind = kind
        self.key = key
        self.source = source
        self.dest = dest
        super().__init__(
            f"{kind} entry {key!r} differs between {source} and {dest}; "
            f"content-addressed stores can only conflict through corruption "
            f"or diverging code — refusing to merge"
        )


@dataclass
class MergeReport:
    """Outcome of one :func:`merge_stores` call."""

    dest: str
    dry_run: bool = False
    copied_results: int = 0
    copied_stages: int = 0
    identical_results: int = 0  # present in both sides with equal payloads
    identical_stages: int = 0
    skipped: int = 0  # unreadable source entries (partial writes), left alone
    per_source: Dict[str, int] = field(default_factory=dict)  # source root -> entries copied

    def summary(self) -> str:
        verb = "would copy" if self.dry_run else "copied"
        text = (
            f"{verb} {self.copied_results} result(s) + {self.copied_stages} stage(s) "
            f"into {self.dest}; {self.identical_results + self.identical_stages} "
            f"already present and identical"
        )
        if self.skipped:
            text += f"; skipped {self.skipped} unreadable source entr(y/ies)"
        return text


def _read_result_payload(path: str) -> Optional[Dict[str, Any]]:
    """A result file's payload, or ``None`` when unreadable/partial."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _result_identity(payload: Dict[str, Any]) -> Tuple[Any, Any, Any]:
    """The comparable content of a result payload (timestamps excluded)."""
    return (payload.get("format"), payload.get("spec"), payload.get("result"))


def _stage_arrays(path: str) -> Optional[Dict[str, np.ndarray]]:
    try:
        with np.load(path) as payload:
            return {name: payload[name].copy() for name in payload.files}
    except (OSError, ValueError):
        return None


def _stages_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    if set(a) != set(b):
        return False
    return all(
        a[name].dtype == b[name].dtype
        and a[name].shape == b[name].shape
        and np.array_equal(a[name], b[name])
        for name in a
    )


def _iter_result_files(root: str):
    """Yield ``(experiment, filename, path)`` for every result entry."""
    results_root = os.path.join(root, "results")
    if not os.path.isdir(results_root):
        return
    for experiment in sorted(os.listdir(results_root)):
        directory = os.path.join(results_root, experiment)
        if not os.path.isdir(directory):
            continue
        for filename in sorted(os.listdir(directory)):
            if filename.endswith(".json"):
                yield experiment, filename, os.path.join(directory, filename)


def _copy_atomic(source_path: str, dest_path: str) -> None:
    atomic_write(dest_path, lambda tmp: shutil.copyfile(source_path, tmp))


def merge_stores(
    sources: Sequence[Union[str, ResultStore]],
    into: Union[str, ResultStore],
    dry_run: bool = False,
) -> MergeReport:
    """Union result and stage entries of ``sources`` into the ``into`` store.

    Every source entry is either copied (missing at the destination),
    counted as identical (present with an equal payload), or — when the
    destination holds a *different* payload under the same key — aborts
    the whole merge with :class:`MergeConflictError` before any copy
    happens (conflicts are detected in a scan pass first, so a failed
    merge never leaves the destination half-updated).  Unreadable source
    entries (a reader racing a writer mid-rename on a synced directory)
    are skipped and counted, mirroring the store's own tolerance.

    Lease files are *not* merged: a lease is host-local liveness state and
    means nothing in a combined store.
    """
    dest = into if isinstance(into, ResultStore) else ResultStore(into)
    source_stores = [
        source if isinstance(source, ResultStore) else ResultStore(source)
        for source in sources
    ]
    report = MergeReport(dest=dest.root, dry_run=dry_run)

    # Pass 1: scan everything and detect conflicts (against the destination
    # AND between sources) before a single byte moves.
    planned_results: List[Tuple[str, str, str]] = []  # (experiment, filename, source path)
    seen_results: Dict[str, Tuple[str, Tuple[Any, Any, Any]]] = {}
    planned_stages: List[Tuple[str, str]] = []  # (filename, source path)
    seen_stages: Dict[str, Tuple[str, Dict[str, np.ndarray]]] = {}

    for source in source_stores:
        if os.path.abspath(source.root) == os.path.abspath(dest.root):
            raise ValueError(f"source store {source.root} is the destination")
        copied_from_source = 0
        for experiment, filename, path in _iter_result_files(source.root):
            payload = _read_result_payload(path)
            if payload is None:
                LOGGER.warning("merge: skipping unreadable result entry %s", path)
                report.skipped += 1
                continue
            identity = _result_identity(payload)
            key = f"{experiment}/{filename}"
            dest_path = os.path.join(dest.root, "results", experiment, filename)
            dest_payload = (
                _read_result_payload(dest_path) if os.path.exists(dest_path) else None
            )
            if dest_payload is not None:
                if _result_identity(dest_payload) != identity:
                    raise MergeConflictError("result", key, path, dest_path)
                report.identical_results += 1
                continue
            if key in seen_results:
                if seen_results[key][1] != identity:
                    raise MergeConflictError("result", key, path, seen_results[key][0])
                report.identical_results += 1
                continue
            seen_results[key] = (path, identity)
            planned_results.append((experiment, filename, path))
            copied_from_source += 1

        stages_root = os.path.join(source.root, "stages")
        for filename in sorted(os.listdir(stages_root)) if os.path.isdir(stages_root) else []:
            if not filename.endswith(".npz"):
                continue
            path = os.path.join(stages_root, filename)
            arrays = _stage_arrays(path)
            if arrays is None:
                LOGGER.warning("merge: skipping unreadable stage entry %s", path)
                report.skipped += 1
                continue
            dest_path = os.path.join(dest.root, "stages", filename)
            if os.path.exists(dest_path):
                dest_arrays = _stage_arrays(dest_path)
                if dest_arrays is not None and not _stages_equal(arrays, dest_arrays):
                    raise MergeConflictError("stage", filename, path, dest_path)
                report.identical_stages += 1
                continue
            if filename in seen_stages:
                if not _stages_equal(arrays, seen_stages[filename][1]):
                    raise MergeConflictError("stage", filename, path, seen_stages[filename][0])
                report.identical_stages += 1
                continue
            seen_stages[filename] = (path, arrays)
            planned_stages.append((filename, path))
            copied_from_source += 1
        report.per_source[source.root] = copied_from_source

    # Pass 2: copy (atomic per entry, source bytes preserved verbatim).
    if not dry_run:
        for experiment, filename, path in planned_results:
            _copy_atomic(path, os.path.join(dest.root, "results", experiment, filename))
        for filename, path in planned_stages:
            _copy_atomic(path, os.path.join(dest.root, "stages", filename))
    report.copied_results = len(planned_results)
    report.copied_stages = len(planned_stages)
    return report
