"""One distributed grid worker as a process: ``python -m repro.distributed``.

Start N of these (any mix of hosts sharing/syncing the store directory)
and they cooperatively drain the suite::

    python -m repro.distributed --experiments table1 fig2 --profile fast \\
        --store /shared/store --num-shards 4 --shard-index 0

    python -m repro.distributed --specs suite.json --store ./store

The worker exits 0 once every scenario of the suite has a result in the
store — no matter which worker produced it — and 1 when the remaining
scenarios have all failed locally with no live claimant left.  See
:mod:`repro.distributed` for the lease/steal protocol.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed",
        description="Run one lease-based work-stealing worker over a shared result store.",
    )
    suite = parser.add_argument_group("suite (one of)")
    suite.add_argument(
        "--experiments",
        nargs="+",
        metavar="ID",
        default=None,
        help="registered experiment identifiers (see `python -m repro.experiments list`), or `all`",
    )
    suite.add_argument(
        "--specs",
        default=None,
        metavar="FILE",
        help="JSON file holding a list of scenario-spec dicts (ScenarioSpec.as_dict form)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="shared store directory (default: <cache-dir>/runner)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="override the cache directory (default: $REPRO_CACHE_DIR or ./.repro_cache)",
    )
    parser.add_argument("--profile", "-p", default=None, help="experiment profile (default: fast)")
    parser.add_argument(
        "--engine",
        "-e",
        default=None,
        help="simulation engine pin for every scenario (reference | vectorized)",
    )
    parser.add_argument("--owner", default=None, help="worker identity recorded in lease files")
    parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="S",
        help="lease time-to-live; a worker silent this long is presumed dead (default: 60)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="sleep between passes while other workers hold all remaining leases",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        help="this worker's shard (0-based); its affine scenarios are visited first",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=None,
        help="total shard count for deterministic affinity (give with --shard-index)",
    )
    parser.add_argument(
        "--max-scenarios",
        type=int,
        default=None,
        metavar="K",
        help="stop after executing K scenarios (testing/budgeting; default: drain fully)",
    )
    return parser


def _build_grid(args: argparse.Namespace):
    from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec

    if (args.specs is None) == (args.experiments is None):
        raise SystemExit("give exactly one of --specs FILE or --experiments ID...")
    if args.specs is not None:
        with open(args.specs, encoding="utf-8") as handle:
            payloads = json.load(handle)
        if not isinstance(payloads, list):
            raise SystemExit(f"{args.specs}: expected a JSON list of spec dicts")
        specs = tuple(ScenarioSpec.from_dict(payload) for payload in payloads)
        return ScenarioGrid(name=os.path.basename(args.specs), specs=specs)

    from repro.experiments.profiles import get_profile
    from repro.experiments.registry import suite_grid

    try:
        return suite_grid(
            args.experiments,
            profile=get_profile(args.profile),
            engine=args.engine,
            name="work-suite",
        )
    except KeyError as error:
        raise SystemExit(str(error).strip('"').strip("'"))


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = os.path.abspath(args.cache_dir)

    from repro.distributed.lease import DEFAULT_TTL_S
    from repro.distributed.worker import DistributedExecutionError, GridWorker
    from repro.experiments.runner.store import ResultStore

    grid = _build_grid(args)
    store = ResultStore(os.path.abspath(args.store) if args.store else None)
    worker = GridWorker(
        grid,
        store,
        owner=args.owner,
        ttl=args.ttl if args.ttl is not None else DEFAULT_TTL_S,
        poll_s=args.poll,
        shard_index=args.shard_index,
        num_shards=args.num_shards,
    )
    print(
        f"worker {worker.owner}: draining {len(grid)} scenario(s) of {grid.name!r} "
        f"in {store.root}",
        flush=True,
    )
    try:
        report = worker.drain(max_scenarios=args.max_scenarios)
    except DistributedExecutionError as error:
        print(f"worker {worker.owner}: {error}", file=sys.stderr, flush=True)
        return 1
    print(report.summary(), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
