"""Coordinator-less grid workers: lease-claimed, shard-affine, work-stealing.

Any number of :class:`GridWorker` processes — on one host or on many hosts
sharing a synced store directory — can be pointed at the same
:class:`~repro.experiments.runner.spec.ScenarioGrid` and the same
:class:`~repro.experiments.runner.store.ResultStore`, with no coordinator:

* a scenario is *done* when its result is in the store, *in flight* when a
  live lease file exists next to it (see :mod:`repro.distributed.lease`),
  and *available* otherwise;
* each worker walks the grid in a deterministic order — the scenarios of
  its own shard (:func:`shard_of` over the spec hash) first, everyone
  else's after — claiming available scenarios via atomic lease creation
  and executing them through the runner's shared execution core;
* when only other workers' live leases remain, the worker polls: either
  the owners finish (results appear, leases vanish) or they crash (leases
  expire) and the poller *steals* the scenarios.  Stragglers therefore
  never stall a suite, and a SIGKILLed worker's claims are re-executed.

Results are bit-identical to a serial :func:`~repro...executor.run_grid`
run no matter how many workers participate, which worker executes what, or
how many crashes occur mid-suite: every scenario reseeds from its spec
hash, so *what* runs determines the result and *who/when* cannot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed.lease import DEFAULT_TTL_S, Heartbeat, LeaseManager
from repro.experiments.runner.executor import execute_pending
from repro.experiments.runner.spec import ScenarioGrid, ScenarioSpec
from repro.experiments.runner.store import ResultStore
from repro.sim import SimConfig, apply_config
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.distributed")


class DistributedExecutionError(RuntimeError):
    """Scenarios failed and no worker can finish them.

    Raised by :meth:`GridWorker.drain` when every remaining pending
    scenario has failed in this worker and carries no other worker's live
    lease — waiting longer cannot help.  Completed siblings' results are
    already in the store, so a resumed drain re-attempts only the failures.
    """

    def __init__(self, failures: Dict[ScenarioSpec, BaseException]):
        self.failures = failures
        detail = "; ".join(
            f"{spec.label()}: {type(error).__name__}: {error}"
            for spec, error in failures.items()
        )
        super().__init__(f"{len(failures)} scenario(s) failed with no live claimant ({detail})")


def shard_of(spec_hash: str, num_shards: int) -> int:
    """Deterministic shard index of a spec hash (hex digest -> 0..N-1).

    A pure function of the scenario's content hash, so every worker — with
    no communication — agrees on which shard every scenario belongs to.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return int(spec_hash, 16) % num_shards


def worker_order(
    specs: Sequence[ScenarioSpec],
    shard_index: Optional[int] = None,
    num_shards: Optional[int] = None,
) -> List[ScenarioSpec]:
    """The order one worker visits a grid: own shard first, then stealing.

    With a shard assignment, the worker's affine scenarios come first (the
    fast path: N equal workers visit disjoint prefixes and barely contend
    on leases), followed by every other shard's scenarios (the stealing
    path: whatever the affine owners have not finished or claimed).  Both
    halves are hash-ordered so all workers agree on the sequence within a
    shard.  Without a shard assignment all scenarios are one hash-ordered
    stealing pool.
    """
    if (shard_index is None) != (num_shards is None):
        raise ValueError("shard_index and num_shards must be given together")
    ordered = sorted(specs, key=lambda spec: spec.hash)
    if shard_index is None:
        return ordered
    if not 0 <= shard_index < num_shards:
        raise ValueError(f"shard_index {shard_index} outside 0..{num_shards - 1}")
    mine = [spec for spec in ordered if shard_of(spec.hash, num_shards) == shard_index]
    theirs = [spec for spec in ordered if shard_of(spec.hash, num_shards) != shard_index]
    return mine + theirs


@dataclass
class WorkReport:
    """What one :meth:`GridWorker.drain` call did."""

    owner: str
    executed: List[str] = field(default_factory=list)  # spec hashes this worker ran
    stolen: List[str] = field(default_factory=list)  # executed hashes outside our shard
    reclaimed: List[str] = field(default_factory=list)  # claims taken from expired leases
    cached: int = 0  # already in the store when first visited
    lease_lost: int = 0  # claim races lost to other workers
    polls: int = 0  # waits on other workers' live leases
    duration_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.owner}: executed {len(self.executed)} "
            f"(stolen {len(self.stolen)}, reclaimed {len(self.reclaimed)}), "
            f"cached {self.cached}, lost {self.lease_lost} claim race(s), "
            f"polled {self.polls}x, {self.duration_s:.2f}s"
        )


class GridWorker:
    """One cooperative drain participant over a shared store directory.

    Parameters
    ----------
    grid:
        The suite to drain.  Every participating worker must be given the
        same grid (they need no other shared state).
    store:
        The shared :class:`ResultStore`.  Results *and* leases live under
        its root, so pointing N workers at one root is the whole setup.
    owner:
        Worker identity recorded in lease files; defaults to a
        process-unique id.
    ttl:
        Lease time-to-live.  A worker silent for longer than this is
        presumed dead and its in-flight scenarios become stealable.
    poll_s:
        Sleep between passes while other workers' live leases block the
        remaining scenarios.
    shard_index / num_shards:
        Optional deterministic shard affinity (see :func:`worker_order`).
    heartbeat_s:
        Heartbeat interval while executing; defaults to ``ttl / 4``.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        store: ResultStore,
        owner: Optional[str] = None,
        ttl: float = DEFAULT_TTL_S,
        poll_s: float = 0.5,
        shard_index: Optional[int] = None,
        num_shards: Optional[int] = None,
        heartbeat_s: Optional[float] = None,
    ):
        self.grid = grid
        self.store = store
        self.leases = LeaseManager(store.root, owner=owner, ttl=ttl)
        self.poll_s = float(poll_s)
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.heartbeat_s = heartbeat_s
        self._order = worker_order(list(grid), shard_index, num_shards)

    @property
    def owner(self) -> str:
        return self.leases.owner

    def _is_mine(self, spec: ScenarioSpec) -> bool:
        if self.shard_index is None:
            return True
        return shard_of(spec.hash, self.num_shards) == self.shard_index

    def drain(self, max_scenarios: Optional[int] = None) -> WorkReport:
        """Work until the grid is complete (or this worker's budget is spent).

        Returns once every scenario of the grid has a store result —
        whoever produced it — or, with ``max_scenarios``, once this worker
        has executed that many.  Raises
        :class:`DistributedExecutionError` when the remaining scenarios
        have all failed here and no other worker holds a live claim on
        them.
        """
        report = WorkReport(owner=self.owner)
        failures: Dict[ScenarioSpec, BaseException] = {}
        bundles: Dict[str, Any] = {}
        touched: Dict[int, Any] = {}
        first_pass = True
        start = time.perf_counter()
        try:
            while True:
                if max_scenarios is not None and len(report.executed) >= max_scenarios:
                    break
                pending = [spec for spec in self._order if self.store.get(spec) is None]
                if first_pass:
                    report.cached = len(self.grid) - len(pending)
                    first_pass = False
                if not pending:
                    break
                progress = False
                for spec in pending:
                    if max_scenarios is not None and len(report.executed) >= max_scenarios:
                        break
                    if spec in failures:
                        continue  # one attempt per worker; others may still succeed
                    if self.store.get(spec) is not None:
                        continue  # another worker finished it this pass
                    was_expired = (
                        self.leases.owner_of(spec.hash) is not None
                        and not self.leases.is_live(spec.hash)
                    )
                    if not self.leases.acquire(spec.hash, label=spec.label()):
                        report.lease_lost += 1
                        continue
                    if was_expired:
                        report.reclaimed.append(spec.hash)
                        LOGGER.info(
                            "%s reclaimed expired lease for %s", self.owner, spec.label()
                        )
                    try:
                        with Heartbeat(self.leases, spec.hash, interval=self.heartbeat_s):
                            result, elapsed, bundle = execute_pending(
                                spec, self.store, bundles=bundles
                            )
                            if bundle is not None:
                                touched[id(bundle)] = bundle
                            self.store.put(spec, result)
                    except Exception as error:
                        failures[spec] = error
                        LOGGER.warning(
                            "%s: scenario %s failed: %s", self.owner, spec.label(), error
                        )
                        continue
                    finally:
                        self.leases.release(spec.hash)
                    report.executed.append(spec.hash)
                    if not self._is_mine(spec):
                        report.stolen.append(spec.hash)
                    progress = True
                    LOGGER.info(
                        "%s: scenario %s done in %.2fs", self.owner, spec.label(), elapsed
                    )
                if progress:
                    continue
                # No claimable work this pass.  Scenarios behind other
                # workers' live leases are worth waiting for (the owner
                # either finishes them or crashes and we steal); scenarios
                # that failed here with no live claimant are not.
                remaining = [spec for spec in pending if self.store.get(spec) is None]
                if not remaining:
                    break
                stuck = [
                    spec
                    for spec in remaining
                    if spec in failures and not self.leases.is_live(spec.hash)
                ]
                if len(stuck) == len(remaining):
                    raise DistributedExecutionError({spec: failures[spec] for spec in stuck})
                report.polls += 1
                time.sleep(self.poll_s)
        finally:
            # Leave shared models as every execution path does: pre-trained
            # snapshot, trainable, clean baseline config.
            for bundle in touched.values():
                bundle.restore_pretrained()
                bundle.model.requires_grad_(True)
                apply_config(bundle.model, SimConfig(mode="clean"))
            report.duration_s = time.perf_counter() - start
        return report
