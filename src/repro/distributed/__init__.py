"""Distributed grid execution: lease-based work-stealing over a shared store.

The third execution backend of the scenario runner (after the serial
oracle and the spawn pool): any number of independent worker *processes* —
started by hand, by a scheduler, or on several hosts sharing a synced
store directory — cooperatively drain one
:class:`~repro.experiments.runner.spec.ScenarioGrid` with no coordinator.
All shared state is files under the store root:

* ``results/`` + ``stages/`` — the content-addressed
  :class:`~repro.experiments.runner.store.ResultStore` (a scenario is done
  when its result file exists);
* ``leases/`` — in-flight claims (:mod:`repro.distributed.lease`): atomic
  O_EXCL creation is the claim, a heartbeat on the file's mtime is
  liveness, and an expired lease is a crashed worker whose scenario gets
  stolen and re-executed.

Because every scenario reseeds from its spec's content hash, the combined
store of N workers (any interleaving, crashes included) is bit-identical
to a serial run, and stores produced on different hosts can be unioned
with :func:`~repro.distributed.merge.merge_stores` (conflicting payloads
are a hard error, not a silent pick).

Entry points: ``python -m repro.distributed`` runs one worker;
``python -m repro.experiments work`` does the same for registered
experiment suites, ``... merge`` unions stores, and ``... report
--follow`` streams an incrementally re-rendered markdown report while
workers drain.
"""

from repro.distributed.lease import DEFAULT_TTL_S, Heartbeat, LeaseManager, default_owner
from repro.distributed.merge import MergeConflictError, MergeReport, merge_stores
from repro.distributed.worker import (
    DistributedExecutionError,
    GridWorker,
    WorkReport,
    shard_of,
    worker_order,
)

__all__ = [
    "DEFAULT_TTL_S",
    "DistributedExecutionError",
    "GridWorker",
    "Heartbeat",
    "LeaseManager",
    "MergeConflictError",
    "MergeReport",
    "WorkReport",
    "default_owner",
    "merge_stores",
    "shard_of",
    "worker_order",
]
