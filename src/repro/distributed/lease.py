"""Lease files: the coordination primitive of the distributed executor.

A *lease* is a tiny JSON file living next to a scenario's store entry
(``<store-root>/leases/<spec-hash>.json``) that marks the scenario as
in-flight.  The whole protocol rests on two POSIX guarantees that hold on
local filesystems and on the network filesystems a multi-host store
directory would be shared through (NFSv3+ with standard semantics):

``O_CREAT | O_EXCL`` is atomic
    Creating the lease file exclusively *is* the claim.  Of N workers
    racing to claim one scenario, exactly one ``os.open`` succeeds; the
    rest move on to other scenarios.

``rename`` is atomic
    Stealing an expired lease goes through a rename to a stealer-unique
    name.  Of N workers seeing the same expired lease, exactly one rename
    succeeds — that worker deletes the stale file and re-enters the
    ordinary O_EXCL claim race (which it may still lose, harmlessly).

Liveness is a heartbeat on the lease's mtime: the owning worker touches
the file periodically (:class:`Heartbeat`); a lease whose mtime is older
than its recorded TTL belongs to a crashed or SIGKILLed worker and is
reclaimable.  Correctness never depends on exclusivity, only progress
does: scenario results are pure functions of their spec (hash-derived
seeds) and store writes are atomic, so in the worst clock-skew case two
workers execute the same scenario and write semantically identical
results — wasted work, never a wrong store.

This module deliberately imports nothing from the rest of the package so
low-level store code (:meth:`ResultStore.gc`) can use it without cycles.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from typing import Any, Dict, List, Optional

#: Subdirectory of a result-store root that holds the lease files.
LEASE_DIRNAME = "leases"

#: Default lease TTL: a worker missing heartbeats for this long is presumed
#: dead and its claims become stealable.  Generous relative to the default
#: heartbeat interval (TTL/4) so one slow NFS round-trip cannot trigger a
#: spurious steal.
DEFAULT_TTL_S = 60.0


def default_owner() -> str:
    """A process-unique owner identity (host, pid, random tail).

    The random tail keeps identities unique across pid reuse — a recycled
    pid on the same host must not look like the previous worker's ghost.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class LeaseManager:
    """Claim / heartbeat / release / steal over one store's lease directory.

    Parameters
    ----------
    root:
        The result-store root directory (leases live in
        ``<root>/leases/``).
    owner:
        This worker's identity; defaults to :func:`default_owner`.
    ttl:
        Seconds after the last heartbeat at which *this manager's* claims
        expire.  Each lease file records the TTL it was claimed under, and
        expiry checks honour the recorded value, so workers with different
        TTLs interoperate.
    """

    def __init__(self, root: str, owner: Optional[str] = None, ttl: float = DEFAULT_TTL_S):
        self.root = root
        self.owner = owner or default_owner()
        self.ttl = float(ttl)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def lease_dir(self) -> str:
        return os.path.join(self.root, LEASE_DIRNAME)

    def lease_path(self, spec_hash: str) -> str:
        return os.path.join(self.lease_dir, f"{spec_hash}.json")

    # ------------------------------------------------------------------
    # Claim / steal
    # ------------------------------------------------------------------
    def acquire(self, spec_hash: str, **extra: Any) -> bool:
        """Try to claim a scenario; ``True`` means this worker owns it now.

        One O_EXCL attempt, and — if an *expired* lease is in the way — one
        steal followed by a second O_EXCL attempt.  Losing either race
        returns ``False``; the scenario is someone else's.
        """
        path = self.lease_path(spec_hash)
        os.makedirs(self.lease_dir, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._steal_expired(path):
                    continue
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "owner": self.owner,
                        "host": socket.gethostname(),
                        "pid": os.getpid(),
                        "spec_hash": spec_hash,
                        "ttl": self.ttl,
                        "created": time.time(),
                        **extra,
                    },
                    handle,
                )
            return True
        return False

    def _steal_expired(self, path: str) -> bool:
        """Clear ``path`` if its lease has expired; ``True`` = retry the claim.

        The rename-to-unique-name makes the steal single-winner: a loser's
        rename raises (source gone) and it simply retries the O_EXCL claim,
        where the winner — or a third worker — may already have a fresh
        lease.
        """
        expiry = self._expiry(path)
        if expiry is None:
            return True  # released meanwhile: the claim retry decides
        if not expiry:
            return False  # live lease, someone is working on it
        stale = f"{path}.stale-{self.owner}"
        try:
            os.rename(path, stale)
        except OSError:
            return True  # another stealer won; retry the claim race
        try:
            os.unlink(stale)
        except OSError:
            pass
        return True

    def _expiry(self, path: str) -> Optional[bool]:
        """``True`` = expired, ``False`` = live, ``None`` = file is gone."""
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            return None
        ttl = self.ttl
        payload = self._read(path)
        if payload is not None and isinstance(payload.get("ttl"), (int, float)):
            ttl = float(payload["ttl"])
        return (time.time() - mtime) > ttl

    @staticmethod
    def _read(path: str) -> Optional[Dict[str, Any]]:
        """The lease payload, or ``None`` while it is mid-write/corrupt.

        Lease files are written *after* the O_EXCL create, so a reader can
        observe an empty or partial file; expiry then falls back to the
        reader's own TTL, which is the conservative choice (a fresh mtime
        keeps the lease live either way).
        """
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------
    # Heartbeat / release
    # ------------------------------------------------------------------
    def heartbeat(self, spec_hash: str) -> bool:
        """Refresh the mtime of a lease this worker owns.

        Returns ``False`` (without touching anything) when the lease is
        gone or owned by someone else — i.e. this worker was presumed dead
        and its claim was stolen; the caller keeps executing (results are
        deterministic, the duplicate write is harmless) but stops
        heartbeating a file that is no longer its own.
        """
        path = self.lease_path(spec_hash)
        payload = self._read(path)
        if payload is None or payload.get("owner") != self.owner:
            return False
        try:
            os.utime(path)
        except OSError:
            return False
        return True

    def release(self, spec_hash: str) -> bool:
        """Drop this worker's claim; ``True`` when a lease we owned was removed.

        Only a lease recording this manager's owner id is unlinked —
        releasing after a steal must not destroy the stealer's fresh lease.
        """
        path = self.lease_path(spec_hash)
        payload = self._read(path)
        if payload is not None and payload.get("owner") != self.owner:
            return False
        try:
            os.unlink(path)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection (used by gc, status banners and tests)
    # ------------------------------------------------------------------
    def owner_of(self, spec_hash: str) -> Optional[str]:
        payload = self._read(self.lease_path(spec_hash))
        return None if payload is None else payload.get("owner")

    def is_live(self, spec_hash: str) -> bool:
        return self._expiry(self.lease_path(spec_hash)) is False

    def live_hashes(self) -> List[str]:
        """Spec hashes with an unexpired lease (the in-flight set)."""
        if not os.path.isdir(self.lease_dir):
            return []
        live = []
        for entry in sorted(os.listdir(self.lease_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self.lease_dir, entry)
            if self._expiry(path) is False:
                live.append(entry[: -len(".json")])
        return live


class Heartbeat:
    """Context manager keeping one claim's lease fresh from a daemon thread.

    The interval defaults to a quarter of the manager's TTL so three
    consecutive missed beats still leave the lease live.  Exiting stops the
    thread; it does *not* release the lease (the worker does that after the
    result is safely in the store).
    """

    def __init__(self, manager: LeaseManager, spec_hash: str, interval: Optional[float] = None):
        self.manager = manager
        self.spec_hash = spec_hash
        self.interval = float(interval) if interval is not None else manager.ttl / 4.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.manager.heartbeat(self.spec_hash):
                return  # lease stolen or gone: nothing left to keep alive

    def __enter__(self) -> "Heartbeat":
        self._thread = threading.Thread(
            target=self._run,
            name=f"lease-heartbeat-{self.spec_hash[:8]}",
            daemon=True,  # a SIGKILLed worker must not be kept alive by us
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
