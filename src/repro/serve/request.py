""":class:`EvalRequest` — one deduplicatable unit of serving work.

A request wraps exactly one :class:`~repro.experiments.runner.spec.ScenarioSpec`;
the spec's content hash *is* the request key.  That single decision buys the
whole serving story: two requests with the same key are the same work, so

* N in-flight identical requests share one execution (coalescing, see
  :mod:`repro.serve.coalescer`), and
* any request whose key is already in the content-addressed
  :class:`~repro.experiments.runner.store.ResultStore` is answered from disk
  without touching a model — identical configs cost one simulation ever.

Two wire forms are accepted by :meth:`EvalRequest.from_payload`:

``{"spec": {...}}``
    A raw :meth:`ScenarioSpec.as_dict` payload — any registered experiment
    scenario (``table1``, ``fig2``, ``selftest`` health probes, ...).

``{"profile": "fast", "sim": {...}, "num_repeats": 1}``
    The facade form: evaluate a :class:`~repro.sim.SimConfig` on a profile's
    pre-trained network.  Canonicalised through
    :func:`repro.api.eval_scenario_spec`, which makes every keep-current
    field concrete before hashing — so the identity (and therefore the
    cache key) never depends on server-side residue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Event, Lock
from typing import Any, Dict, Mapping, Optional

from repro.experiments.runner.scenarios import needs_bundle
from repro.experiments.runner.spec import ScenarioSpec

#: Request lifecycle states (``REJECTED`` only under backpressure).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

#: States from which a key may be resubmitted as new work.
RETRYABLE_STATES = (FAILED, REJECTED)

#: How a finished record got its result.
ORIGIN_CACHE = "cache"
ORIGIN_EXECUTED = "executed"


def _normalize_spec_dict(spec_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """Accept mapping-valued ``params``/``overrides``/``sim`` on the wire.

    :meth:`ScenarioSpec.as_dict` serialises those fields as lists of pairs;
    hand-written client payloads naturally use JSON objects instead.
    ``from_dict`` would silently iterate a mapping's *keys* as pairs —
    corrupting the spec's identity — so coerce mappings to pair lists here.
    """
    normalized = dict(spec_dict)
    for name in ("params", "overrides", "sim"):
        value = normalized.get(name)
        if isinstance(value, Mapping):
            normalized[name] = [[key, value[key]] for key in sorted(value)]
    return normalized


@dataclass(frozen=True)
class EvalRequest:
    """An immutable evaluation request: a spec plus its derived identity."""

    spec: ScenarioSpec

    @property
    def key(self) -> str:
        """The coalescing / store key — the spec's content hash."""
        return self.spec.hash

    def label(self) -> str:
        return self.spec.label()

    @property
    def needs_model(self) -> bool:
        """Whether executing this request requires a pre-trained bundle."""
        return needs_bundle(self.spec.experiment)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EvalRequest":
        """Parse a submit payload (either wire form) into a request.

        Raises ``ValueError``/``KeyError`` on malformed payloads — the
        server turns those into error responses, never into crashes.
        """
        if "spec" in payload:
            spec = ScenarioSpec.from_dict(_normalize_spec_dict(payload["spec"]))
            needs_bundle(spec.experiment)  # raises KeyError on unknown ids
            return cls(spec=spec)
        if "sim" in payload or "profile" in payload:
            from repro.api import eval_scenario_spec
            from repro.sim import SimConfig

            sim = SimConfig.from_dict(payload.get("sim") or {})
            seed = payload.get("seed")
            return cls(
                spec=eval_scenario_spec(
                    payload.get("profile") or "fast",
                    sim,
                    num_repeats=int(payload.get("num_repeats", 1)),
                    seed=None if seed is None else int(seed),
                    method=str(payload.get("method", "evaluate")),
                )
            )
        raise ValueError(
            "submit payload must carry either a 'spec' dict or a "
            "'profile'/'sim' evaluation request"
        )


class RequestRecord:
    """Mutable tracking state for one request key.

    One record is shared by every client whose request coalesced onto the
    key; completion is broadcast through a :class:`threading.Event` so both
    worker threads and the asyncio front end (via ``run_in_executor``) can
    wait on it.  All transitions are lock-protected and monotonic
    (``queued -> running -> done|failed``; ``rejected`` is terminal).
    """

    def __init__(self, request: EvalRequest):
        self.request = request
        self.state = QUEUED
        self.origin: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.created_s = time.perf_counter()
        self.finished_s: Optional[float] = None
        self._done = Event()
        self._lock = Lock()

    @property
    def key(self) -> str:
        return self.request.key

    def is_finished(self) -> bool:
        return self.state in (DONE, FAILED, REJECTED)

    def is_in_flight(self) -> bool:
        return self.state in (QUEUED, RUNNING)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish latency, or ``None`` while in flight."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.created_s

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_running(self) -> None:
        with self._lock:
            if self.state == QUEUED:
                self.state = RUNNING

    def resolve(self, result: Dict[str, Any], origin: str) -> None:
        with self._lock:
            self.result = result
            self.origin = origin
            self.state = DONE
            self.finished_s = time.perf_counter()
        self._done.set()

    def fail(self, error: str, state: str = FAILED) -> None:
        with self._lock:
            self.error = error
            self.state = state
            self.finished_s = time.perf_counter()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the record finishes; ``False`` on timeout."""
        return self._done.wait(timeout)

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def as_payload(self, include_result: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "key": self.key,
            "label": self.request.label(),
            "state": self.state,
            "origin": self.origin,
        }
        latency = self.latency_s
        if latency is not None:
            payload["latency_s"] = latency
        if self.error is not None:
            payload["error"] = self.error
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload


@dataclass
class LatencyStat:
    """Streaming latency aggregate for one origin class."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    _lock: Lock = field(default_factory=Lock, repr=False)

    def record(self, latency_s: float) -> None:
        with self._lock:
            self.count += 1
            self.total_s += latency_s
            self.max_s = max(self.max_s, latency_s)

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            mean = self.total_s / self.count if self.count else 0.0
            return {"count": self.count, "mean_s": mean, "max_s": self.max_s}
