"""``python -m repro.serve`` — run the evaluation server from the shell.

Example::

    python -m repro.serve --port 0 --workers 1 --max-models 2 \
        --cache-dir /tmp/serve_cache

``--port 0`` binds an ephemeral port; the actual address is announced on
stdout as ``serving on HOST:PORT`` (and flushed immediately) so wrapping
harnesses — the serve benchmark, shell scripts — can parse it.  The server
runs until interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Optional, Sequence

from repro.serve.server import EvalServer, EvalService, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived concurrent evaluation server over repro.api",
    )
    defaults = ServeConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--workers", type=int, default=defaults.workers,
        help="1 executes inline (serialised); >1 dispatches to that many "
        "worker processes, each with its own execution context",
    )
    parser.add_argument(
        "--max-models", type=int, default=defaults.max_models,
        help="LRU bound on resident pre-trained models (one per profile)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=defaults.queue_size,
        help="execution queue bound; submits beyond it are rejected",
    )
    parser.add_argument(
        "--timeout", type=float, default=defaults.default_timeout_s,
        help="default blocking-wait bound in seconds",
    )
    parser.add_argument(
        "--batch-window", type=float, default=defaults.batch_window_s * 1000.0,
        metavar="MS",
        help="micro-batching window in milliseconds: a worker waits up to "
        "this long to stack compatible distinct eval requests into one "
        "batched forward (0 disables batching, the default; results are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=defaults.max_batch, metavar="K",
        help="most requests one stacked forward may carry",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (sets REPRO_CACHE_DIR: pre-trained checkpoints "
        "and the content-addressed result store live here)",
    )
    return parser


async def _run(config: ServeConfig) -> None:
    server = EvalServer(EvalService(config))
    await server.start()
    for sock in server.sockets:
        host, port = sock.getsockname()[:2]
        print(f"serving on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_models=args.max_models,
        queue_size=args.queue_size,
        default_timeout_s=args.timeout,
        batch_window_s=args.batch_window / 1000.0,
        max_batch=args.max_batch,
    )
    try:
        asyncio.run(_run(config))
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
