"""``repro.serve`` — simulation-as-a-service over :mod:`repro.api`.

A long-lived concurrent evaluation server for the crossbar simulator: keep
the pre-trained models warm and answer many evaluation requests instead of
paying model construction and pre-training per driver invocation.

The whole design rides on one identity: **a request is its scenario spec,
and the spec's content hash is the request key** (the same hash that keys
the content-addressed result store).  Identical work is therefore
recognisable *before* it runs:

* N concurrent identical requests coalesce onto one execution
  (:mod:`repro.serve.coalescer`) — the other N-1 wait on the shared record;
* a request whose result is already stored is answered from disk without
  touching any model (:class:`~repro.serve.server.EvalService`);
* distinct requests against the same profile share one resident
  pre-trained model copy, LRU-bounded (:class:`~repro.serve.pool.ModelPool`).

Concurrency model: the asyncio front end (:class:`~repro.serve.server.EvalServer`)
accepts any number of clients.  **Scaling out means processes, not
threads** — and with ``workers > 1`` the server actually does it: the
:class:`~repro.serve.pool.ExecutionEngine` dispatches each scenario to a
spawn pool of worker processes, each owning its own
:class:`repro.context.ExecutionContext` (compute-dtype policy, RNG
stream, bundle cache), so K distinct requests execute ``min(K, workers)``
wide with no global execution lock.  Threads would not work here even
with the context machinery: a simulation saturates its process (NumPy
compute holds the GIL for real work) and the pooled model object itself
is mutated during configuration, so in-process threading buys
interleaving, not speedup.  With ``workers == 1`` (default) execution is
inline and serialised behind the engine's lock — the single parent
context is shared state, and overlapping conflicting sessions on one
context is forbidden (:class:`repro.sim.ConcurrentDtypeError`).

Run it: ``python -m repro.serve --help``.
"""

from repro.serve.coalescer import RequestTable
from repro.serve.pool import ExecutionEngine, ModelPool
from repro.serve.request import (
    DONE,
    FAILED,
    ORIGIN_CACHE,
    ORIGIN_EXECUTED,
    QUEUED,
    REJECTED,
    RUNNING,
    EvalRequest,
    LatencyStat,
    RequestRecord,
)
from repro.serve.server import EvalServer, EvalService, ServeConfig

__all__ = [
    "DONE",
    "FAILED",
    "ORIGIN_CACHE",
    "ORIGIN_EXECUTED",
    "QUEUED",
    "REJECTED",
    "RUNNING",
    "EvalRequest",
    "EvalServer",
    "EvalService",
    "ExecutionEngine",
    "LatencyStat",
    "ModelPool",
    "RequestRecord",
    "RequestTable",
    "ServeConfig",
]
