"""The evaluation service and its asyncio socket front end.

Layering (front to back)::

    EvalServer          asyncio JSON-lines TCP protocol (submit/status/...)
      -> EvalService    coalescing, store cache hits, backpressure, counters
        -> ExecutionEngine   inline (serialised) or spawn-pool (parallel)
          -> ModelPool       LRU-bounded shared pre-trained bundles

Request lifecycle inside :meth:`EvalService.submit` (one table-lock pass,
so concurrent identical submits cannot double-execute):

1. the request key (spec hash) joins an in-flight record if one exists —
   that submit *coalesces*: no queue entry, no model, it just shares the
   eventual result;
2. a fresh key is first checked against the content-addressed
   :class:`~repro.experiments.runner.store.ResultStore` — a hit resolves
   immediately (``origin="cache"``) without touching any model;
3. otherwise the record enters the bounded execution queue — or is
   rejected on the spot when the queue is full (backpressure: the client
   sees ``state="rejected"`` instead of the server buffering unboundedly).

Worker threads drain the queue through the
:class:`~repro.serve.pool.ExecutionEngine`; every successful execution is
persisted to the store before the record resolves, so the next identical
request — this process or any later one — is a cache hit.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.experiments.runner.store import ResultStore, default_store
from repro.serve.coalescer import RequestTable
from repro.serve.pool import ExecutionEngine, ModelPool
from repro.serve.request import (
    ORIGIN_CACHE,
    ORIGIN_EXECUTED,
    REJECTED,
    EvalRequest,
    LatencyStat,
    RequestRecord,
)
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.serve")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`EvalService` / :class:`EvalServer` instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Workers.  ``1`` (default) runs scenarios inline, serialised by the
    #: engine's execution lock.  ``> 1`` turns on parallel dispatch: that
    #: many queue-draining threads each ship their scenario to the engine's
    #: spawn pool of equally many worker *processes* — one
    #: :class:`repro.context.ExecutionContext` per process, so K distinct
    #: requests run ``min(K, workers)``-wide with no global lock.
    workers: int = 1
    #: LRU bound on resident pre-trained bundles (one per profile token).
    max_models: int = 2
    #: Bounded execution queue — submits beyond this are rejected, not
    #: buffered (backpressure).
    queue_size: int = 64
    #: Default wait bound for blocking ``submit``/``result`` calls.
    default_timeout_s: float = 300.0
    #: Finished-record history kept for status/result lookups.
    max_history: int = 1024
    #: Micro-batching window.  ``0`` (default) disables batching: every
    #: request executes on its own, exactly as before.  ``> 0`` lets a
    #: worker that dequeues a batchable ``api_eval`` request wait up to
    #: this long for *compatible distinct* requests (same profile, repeat
    #: count and :meth:`SimConfig.compat_key`) and run the group as one
    #: stacked multi-scenario forward.  Results are bit-identical to
    #: unbatched execution and still stored per request, so coalescing and
    #: cache hits are unaffected.
    batch_window_s: float = 0.0
    #: Most requests one stacked forward may carry.
    max_batch: int = 8


class EvalService:
    """Coalescing, caching, backpressured evaluation service (no sockets)."""

    def __init__(
        self,
        config: ServeConfig = ServeConfig(),
        store: Optional[ResultStore] = None,
        pool: Optional[ModelPool] = None,
    ):
        self.config = config
        self.store = store if store is not None else default_store()
        self.pool = pool if pool is not None else ModelPool(max_models=config.max_models)
        self.engine = ExecutionEngine(
            self.pool, stage_store=self.store, workers=config.workers
        )
        self.table = RequestTable(max_history=config.max_history)
        self._queue: "queue.Queue[RequestRecord]" = queue.Queue(maxsize=config.queue_size)
        self._workers: list = []
        self._stop = threading.Event()
        self._counter_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "executed": 0,
            "failed": 0,
            "rejected": 0,
            # Micro-batching (only moves when ``batch_window_s > 0``):
            # ``batched`` counts requests that went through a stacked
            # forward, ``batches`` the stacked forwards themselves.
            "batched": 0,
            "batches": 0,
        }
        self.latency: Dict[str, LatencyStat] = {
            ORIGIN_CACHE: LatencyStat(),
            ORIGIN_EXECUTED: LatencyStat(),
        }
        #: Executions per queue-draining worker thread, for the stats op —
        #: the observable proof that >1 workers actually share the load.
        self._executed_per_worker: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._workers:
            return
        self._stop.clear()
        for index in range(max(1, self.config.workers)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    def stop(self) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers.clear()
        self.engine.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> RequestRecord:
        """Submit a request payload; returns its (possibly shared) record."""
        request = EvalRequest.from_payload(payload)
        self._bump("submitted")

        def on_create(record: RequestRecord) -> None:
            # Runs inside the table lock: the created record is routed
            # (cache hit / queued / rejected) before any other submitter of
            # the same key can observe it.
            cached = self.store.get(request.spec)
            if cached is not None:
                record.resolve(cached, origin=ORIGIN_CACHE)
                self._bump("cache_hits")
                self._record_latency(record)
                return
            try:
                self._queue.put_nowait(record)
            except queue.Full:
                record.fail(
                    f"rejected: execution queue is full "
                    f"({self.config.queue_size} pending)",
                    state=REJECTED,
                )
                self._bump("rejected")

        record, created = self.table.join_or_create(request, on_create=on_create)
        if not created:
            # Joined an existing record — in flight (true coalescing) or
            # already finished (served from history); either way no new work.
            self._bump("coalesced")
        return record

    def get_record(self, key: str) -> Optional[RequestRecord]:
        return self.table.get(key)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                record = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                if self.batching_enabled and self._batch_key(record) is not None:
                    self._drain_batch(record)
                else:
                    self._execute_record(record)
            finally:
                self._queue.task_done()

    @property
    def batching_enabled(self) -> bool:
        return self.config.batch_window_s > 0.0 and self.config.max_batch >= 2

    @staticmethod
    def _batch_key(record: RequestRecord):
        """The record's stacking-group key, or ``None`` (unbatchable)."""
        from repro.api import api_eval_batch_key

        if not record.request.needs_model:
            return None
        return api_eval_batch_key(record.request.spec)

    def _drain_batch(self, first: RequestRecord) -> None:
        """Micro-batch: wait up to the window for compatible requests.

        Collects queued records sharing ``first``'s stacking key (they are
        guaranteed *distinct* specs — identical ones coalesced onto one
        record at submit) up to ``max_batch``, runs them as one stacked
        forward, and executes any incompatible record pulled along the way
        individually afterwards.  Every pulled record is accounted with its
        own ``task_done``.
        """
        from repro.api import api_eval_batch_key

        key = api_eval_batch_key(first.request.spec)
        batch = [first]
        leftovers = []
        deadline = time.monotonic() + self.config.batch_window_s
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            try:
                record = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if self._batch_key(record) == key:
                batch.append(record)
            else:
                # Incompatible work must not sit out the window behind us —
                # stop collecting and run it right after the batch.
                leftovers.append(record)
                break
        try:
            if len(batch) > 1:
                self._execute_batch(batch)
            else:
                self._execute_record(first)
            for record in leftovers:
                self._execute_record(record)
        finally:
            for _ in range(len(batch) - 1 + len(leftovers)):
                self._queue.task_done()

    def _execute_batch(self, records) -> None:
        """Run compatible records as one stacked multi-scenario forward.

        Per-record persistence and resolution are identical to
        :meth:`_execute_record`; a failing stacked execution falls back to
        per-record execution so batching can never lose a request.
        """
        for record in records:
            record.mark_running()
        specs = [record.request.spec for record in records]
        try:
            results = self.engine.execute_batch(specs)
        except Exception as error:  # noqa: BLE001 — server must not die
            LOGGER.warning(
                "stacked execution of %d requests failed (%s: %s); "
                "falling back to per-request execution",
                len(records),
                type(error).__name__,
                error,
            )
            for record in records:
                self._execute_record(record)
            return
        worker_name = threading.current_thread().name
        for record, result in zip(records, results):
            clean = self.store.put(record.request.spec, result)
            record.resolve(clean, origin=ORIGIN_EXECUTED)
            with self._counter_lock:
                self.counters["executed"] += 1
                self.counters["batched"] += 1
                self._executed_per_worker[worker_name] = (
                    self._executed_per_worker.get(worker_name, 0) + 1
                )
            self._record_latency(record)
        self._bump("batches")

    def _execute_record(self, record: RequestRecord) -> None:
        record.mark_running()
        request = record.request
        try:
            result = self.engine.execute(request.spec, request.needs_model)
            clean = self.store.put(request.spec, result)
            record.resolve(clean, origin=ORIGIN_EXECUTED)
            self._bump("executed")
            worker_name = threading.current_thread().name
            with self._counter_lock:
                self._executed_per_worker[worker_name] = (
                    self._executed_per_worker.get(worker_name, 0) + 1
                )
        except Exception as error:  # noqa: BLE001 — server must not die
            LOGGER.warning("request %s failed: %s", request.label(), error)
            record.fail(f"{type(error).__name__}: {error}")
            self._bump("failed")
        self._record_latency(record)

    # ------------------------------------------------------------------
    # Stats / GC
    # ------------------------------------------------------------------
    def _bump(self, counter: str) -> None:
        with self._counter_lock:
            self.counters[counter] += 1

    def _record_latency(self, record: RequestRecord) -> None:
        latency = record.latency_s
        if latency is None or record.origin is None:
            return
        self.latency[record.origin].record(latency)

    def stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            counters = dict(self.counters)
            executed_per_worker = dict(self._executed_per_worker)
        return {
            "counters": counters,
            "pool": self.pool.stats(),
            "queue_depth": self._queue.qsize(),
            "in_flight": self.table.in_flight(),
            "history": len(self.table),
            "workers": {
                "count": len(self._workers),
                "configured": self.config.workers,
                "dispatch": "spawn-pool" if self.engine.parallel else "inline",
                "executed_per_worker": executed_per_worker,
            },
            "batching": {
                "enabled": self.batching_enabled,
                "window_s": self.config.batch_window_s,
                "max_batch": self.config.max_batch,
                "batches": counters["batches"],
                "batched_requests": counters["batched"],
                "avg_width": (
                    counters["batched"] / counters["batches"]
                    if counters["batches"]
                    else 0.0
                ),
            },
            "latency": {
                origin: stat.as_dict() for origin, stat in self.latency.items()
            },
        }

    def gc(self, dry_run: bool = False) -> Dict[str, Any]:
        """Prune store results no registered grid *or live request* produces.

        Reuses :meth:`ResultStore.gc` with the live set extended by every
        key the request table remembers — a result just served (or about to
        land) must never be collected out from under its record.
        """
        from repro.experiments.registry import registered_spec_hashes

        live = set(registered_spec_hashes()) | set(self.table.keys())
        report = self.store.gc(live, dry_run=dry_run)
        return {
            "dry_run": report.dry_run,
            "kept": report.kept,
            "pruned": len(report.pruned),
            "summary": report.summary(),
        }


class EvalServer:
    """Asyncio JSON-lines TCP front end over an :class:`EvalService`.

    Protocol: one JSON object per line in, one per line out.  Requests carry
    an ``op`` plus op-specific fields; responses always carry ``ok``:

    ``{"op": "submit", "spec": {...}} | {"op": "submit", "profile": ..., "sim": {...}}``
        Enqueue (or coalesce/answer) a request.  ``"wait": false`` returns
        immediately with the key and state; by default the call blocks until
        the record finishes (bounded by ``timeout_s``) and returns the result.
    ``{"op": "status", "key": ...}``
        The record's state, without the result body.
    ``{"op": "result", "key": ..., "timeout_s": ...}``
        Wait for and return the full record, result included.
    ``{"op": "stats"}``
        Counters, pool stats, queue depth and per-origin latency.
    ``{"op": "gc", "dry_run": true}``
        Run store garbage collection with live-request protection.

    Blocking waits happen in the default thread-pool executor, so one slow
    simulation never stalls the event loop or other clients' submits.
    """

    def __init__(self, service: EvalService):
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def sockets(self):
        return self._server.sockets if self._server is not None else ()

    async def start(self) -> None:
        self.service.start()
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_client, host=config.host, port=config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return {"ok": False, "error": f"malformed JSON: {error}"}
        if not isinstance(message, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        try:
            return await self._dispatch(message)
        except (KeyError, ValueError, TypeError) as error:
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op", "submit")
        if op == "submit":
            return await self._op_submit(message)
        if op == "status":
            return self._op_status(message)
        if op == "result":
            return await self._op_result(message)
        if op == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op == "gc":
            return {"ok": True, "gc": self.service.gc(dry_run=bool(message.get("dry_run", False)))}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        record = self.service.submit(message)
        if not message.get("wait", True):
            return {"ok": True, **record.as_payload(include_result=False)}
        finished = await self._wait(record, message.get("timeout_s"))
        if not finished:
            return {"ok": False, "timeout": True, **record.as_payload(include_result=False)}
        return {"ok": True, **record.as_payload()}

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record_for(message)
        if record is None:
            return {"ok": False, "error": f"unknown key {message.get('key')!r}"}
        return {"ok": True, **record.as_payload(include_result=False)}

    async def _op_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        record = self._record_for(message)
        if record is None:
            return {"ok": False, "error": f"unknown key {message.get('key')!r}"}
        finished = await self._wait(record, message.get("timeout_s"))
        if not finished:
            return {"ok": False, "timeout": True, **record.as_payload(include_result=False)}
        return {"ok": True, **record.as_payload()}

    def _record_for(self, message: Dict[str, Any]) -> Optional[RequestRecord]:
        key = message.get("key")
        if not key:
            raise ValueError("missing 'key'")
        return self.service.get_record(str(key))

    async def _wait(self, record: RequestRecord, timeout_s: Any) -> bool:
        timeout = (
            self.service.config.default_timeout_s
            if timeout_s is None
            else float(timeout_s)
        )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, record.wait, timeout)
