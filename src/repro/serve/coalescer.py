""":class:`RequestTable` — the in-flight/served request map that coalesces work.

The table owns one invariant: **at most one live
:class:`~repro.serve.request.RequestRecord` per request key**.  Every
submit goes through :meth:`RequestTable.join_or_create` under one lock, so
N concurrent identical requests race onto the same record — the first one
creates it (and gets to enqueue the execution), the other N-1 *join* it and
simply wait on its completion event.  Keys whose record finished in
``failed``/``rejected`` are retryable: a resubmit replaces the dead record
with a fresh one instead of replaying the failure forever.

Finished records are kept (bounded by ``max_history``, oldest evicted
first) so ``status``/``result`` lookups and repeat submissions of recently
served keys are answered from memory; evicting a finished record is always
safe because every *successful* result also lives in the content-addressed
:class:`~repro.experiments.runner.store.ResultStore`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.serve.request import RETRYABLE_STATES, EvalRequest, RequestRecord


class RequestTable:
    def __init__(self, max_history: int = 1024):
        if max_history < 1:
            raise ValueError(f"max_history must be positive, got {max_history}")
        self._records: "OrderedDict[str, RequestRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._max_history = max_history

    def join_or_create(
        self,
        request: EvalRequest,
        on_create: Optional[Callable[[RequestRecord], None]] = None,
    ) -> Tuple[RequestRecord, bool]:
        """The record for ``request``'s key, creating one if none is live.

        Returns ``(record, created)``.  ``on_create`` runs *inside* the
        table lock for a freshly created record, so "create the record and
        hand it to the queue" is atomic with respect to other submitters —
        two racing identical requests can never both enqueue an execution.
        """
        key = request.key
        with self._lock:
            record = self._records.get(key)
            if record is not None and record.state not in RETRYABLE_STATES:
                self._records.move_to_end(key)
                return record, False
            record = RequestRecord(request)
            self._records[key] = record
            self._records.move_to_end(key)
            self._evict_finished_overflow()
            if on_create is not None:
                on_create(record)
            return record, True

    def get(self, key: str) -> Optional[RequestRecord]:
        with self._lock:
            return self._records.get(key)

    def keys(self) -> List[str]:
        """All keys the table currently remembers (live and finished)."""
        with self._lock:
            return list(self._records)

    def in_flight(self) -> int:
        with self._lock:
            return sum(1 for record in self._records.values() if record.is_in_flight())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _evict_finished_overflow(self) -> None:
        # Called with the lock held.  Only finished records are evictable:
        # dropping an in-flight record would break the one-record-per-key
        # coalescing invariant.
        if len(self._records) <= self._max_history:
            return
        for key in list(self._records):
            if len(self._records) <= self._max_history:
                break
            if self._records[key].is_finished():
                del self._records[key]
