"""Model pool and execution engine — the serving back end.

Two concerns live here, deliberately separated from the front end:

:class:`ModelPool`
    Keeps **one shared pre-trained bundle per distinct profile token**,
    LRU-bounded by ``max_models``.  Pre-trained weights depend only on the
    profile (see :func:`repro.experiments.common.profile_token`), so every
    request configuration against the same profile shares one model copy —
    the per-request state (sim config, RNG stream) is applied and undone
    around each execution by the scenario machinery, never baked into the
    pooled model.  Eviction also drops the bundle from the execution
    context's bundle cache (via
    :func:`repro.experiments.common.evict_bundle`) so memory is actually
    released.  Lookups are safe under concurrent callers: a per-token
    build lock makes simultaneous misses for the same profile build once.

:class:`ExecutionEngine`
    Routes scenario execution.  With ``workers > 1`` it dispatches to the
    runner's spawn-pool executor
    (:func:`repro.experiments.runner.executor.spawn_worker_pool`): each
    worker process owns its own :class:`repro.context.ExecutionContext` —
    dtype policy, RNG stream, bundle cache — so K distinct requests run
    ``min(K, workers)``-wide with **no global execution lock**.  With
    ``workers <= 1`` (default) scenarios run inline, one at a time behind
    a lock: inline execution mutates the *parent's* context (dtype policy,
    RNG seeding, pooled-model configuration), and overlapping that within
    one context is exactly what :class:`repro.sim.ConcurrentDtypeError`
    forbids.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional

from repro.experiments.common import (
    ensure_checkpoint_on_disk,
    evict_bundle,
    get_pretrained_bundle,
    profile_token,
)
from repro.experiments.profiles import get_profile
from repro.experiments.runner.executor import (
    _worker_run,
    _worker_run_batch,
    spawn_worker_pool,
)
from repro.experiments.runner.scenarios import execute_scenario
from repro.experiments.runner.spec import ScenarioSpec
from repro.experiments.runner.store import ResultStore
from repro.tensor.dtype import compute_dtype_name, set_compute_dtype
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.serve")


class ModelPool:
    """LRU-bounded cache of pre-trained bundles, keyed by profile token."""

    def __init__(
        self,
        max_models: int = 2,
        builder: Optional[Callable[[Any], Any]] = None,
    ):
        if max_models < 1:
            raise ValueError(f"max_models must be positive, got {max_models}")
        self.max_models = max_models
        # Injectable for tests (stub bundles instead of real pre-training).
        self._builder = builder or get_pretrained_bundle
        self._bundles: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._build_locks: Dict[str, threading.Lock] = {}
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    def bundle_for(self, spec: ScenarioSpec):
        """The shared pre-trained bundle for ``spec``'s resolved profile."""
        profile = get_profile(spec.profile).with_overrides(**spec.override_dict())
        token = profile_token(profile)
        with self._lock:
            if token in self._bundles:
                self._bundles.move_to_end(token)
                self.hits += 1
                return self._bundles[token]
            build_lock = self._build_locks.setdefault(token, threading.Lock())
        # Build outside the pool lock: pre-training/loading can take long and
        # must not block stats() or unrelated lookups.  Callers are no longer
        # serialised by an engine-wide execution lock, so simultaneous misses
        # for the *same* token are funnelled through a per-token build lock:
        # the first caller builds, the rest find the bundle on their
        # double-check and count as hits.
        with build_lock:
            with self._lock:
                if token in self._bundles:
                    self._bundles.move_to_end(token)
                    self.hits += 1
                    return self._bundles[token]
            bundle = self._builder(profile)
            with self._lock:
                self._bundles[token] = bundle
                self._bundles.move_to_end(token)
                self.loads += 1
                self._build_locks.pop(token, None)
                while len(self._bundles) > self.max_models:
                    evicted_token, _ = self._bundles.popitem(last=False)
                    evict_bundle(evicted_token)
                    self.evictions += 1
                    LOGGER.info("model pool evicted bundle %s", evicted_token)
        return bundle

    def tokens(self) -> list:
        with self._lock:
            return list(self._bundles)

    def __len__(self) -> int:
        with self._lock:
            return len(self._bundles)

    def clear(self) -> None:
        with self._lock:
            for token in list(self._bundles):
                evict_bundle(token)
            self._bundles.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "models_loaded": self.loads,
                "model_hits": self.hits,
                "model_evictions": self.evictions,
                "models_resident": len(self._bundles),
            }


class ExecutionEngine:
    """Execute scenarios inline (serialised) or on a spawn pool (parallel).

    ``workers > 1`` turns on parallel dispatch: every execution is shipped
    to a lazily created long-lived spawn pool whose worker processes each
    own an :class:`~repro.context.ExecutionContext`, so distinct requests
    genuinely overlap.  The parent only warms the pre-train checkpoint
    onto disk first (so workers never pre-train redundantly) — it mutates
    none of its own execution state, which is why no lock is taken on this
    path.  ``workers <= 1`` keeps the original inline path: one scenario
    at a time behind ``self.lock``, parent-context dtype snapshotted and
    restored around the run.
    """

    def __init__(self, pool: ModelPool, stage_store=None, workers: int = 1):
        self.pool = pool
        self.stage_store = stage_store
        self.workers = max(1, int(workers))
        #: The inline-execution lock: all parent-context mutation (dtype
        #: policy, RNG seeding, pooled-model configuration) happens while
        #: held.  Parallel dispatch never takes it.
        self.lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def _pool_executor(self) -> ProcessPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                store_root = (
                    self.stage_store.root
                    if isinstance(self.stage_store, ResultStore)
                    else None
                )
                self._executor = spawn_worker_pool(
                    self.workers,
                    store_root=store_root,
                    cache_dir=os.environ.get("REPRO_CACHE_DIR"),
                )
                LOGGER.info("execution engine spawned %d worker(s)", self.workers)
            return self._executor

    def shutdown(self) -> None:
        """Tear down the worker pool (if one was ever spawned)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def execute(self, spec: ScenarioSpec, needs_model: bool) -> Dict[str, Any]:
        """Run ``spec`` and return its raw result dict."""
        if self.parallel:
            return self._execute_parallel(spec, needs_model)
        return self._execute_inline(spec, needs_model)

    def _execute_parallel(self, spec: ScenarioSpec, needs_model: bool) -> Dict[str, Any]:
        if needs_model:
            # Warm through the pool so the parent keeps meaningful pool
            # stats/LRU accounting, then make sure the checkpoint is on disk
            # — the worker rebuilds its own copy from there into its own
            # context's bundle cache.
            ensure_checkpoint_on_disk(self.pool.bundle_for(spec))
        executor = self._pool_executor()
        try:
            _, result, _ = executor.submit(_worker_run, spec.as_dict()).result()
        except BrokenProcessPool:
            # A worker died (OOM, signal).  Drop the broken pool so the next
            # request spawns a fresh one instead of failing forever.
            with self._executor_lock:
                if self._executor is executor:
                    self._executor = None
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        return result

    def execute_batch(self, specs) -> list:
        """Run compatible ``api_eval`` specs as one stacked forward.

        Returns one result dict per spec, in order, each bit-identical to
        what :meth:`execute` would produce for that spec alone (see
        :func:`repro.api.execute_api_eval_batch`).  All members resolve
        against the same profile bundle by construction (the stacking key
        includes profile and overrides), so parallel dispatch ships the
        whole group to **one** worker process — the win is the folded
        shared work inside the stacked forward, not cross-worker fan-out.
        """
        if self.parallel:
            ensure_checkpoint_on_disk(self.pool.bundle_for(specs[0]))
            executor = self._pool_executor()
            payloads = [spec.as_dict() for spec in specs]
            try:
                _, results, _ = executor.submit(_worker_run_batch, payloads).result()
            except BrokenProcessPool:
                with self._executor_lock:
                    if self._executor is executor:
                        self._executor = None
                executor.shutdown(wait=False, cancel_futures=True)
                raise
            return results
        from repro.api import execute_api_eval_batch

        with self.lock:
            saved_dtype = compute_dtype_name()
            try:
                bundle = self.pool.bundle_for(specs[0])
                return execute_api_eval_batch(
                    specs, bundle=bundle, stage_store=self.stage_store
                )
            finally:
                set_compute_dtype(saved_dtype)

    def _execute_inline(self, spec: ScenarioSpec, needs_model: bool) -> Dict[str, Any]:
        # The current context's dtype policy is snapshotted and restored
        # around the run: scenario executors may legitimately switch it
        # (``api_eval`` goes through a :class:`~repro.sim.Session`, which
        # restores it itself, but the engine must not rely on every executor
        # being that careful — the server's policy is no residue, ever).
        with self.lock:
            saved_dtype = compute_dtype_name()
            try:
                bundle = self.pool.bundle_for(spec) if needs_model else None
                return execute_scenario(
                    spec, bundle=bundle, stage_store=self.stage_store
                )
            finally:
                set_compute_dtype(saved_dtype)
