"""Model pool and execution engine — the serving back end.

Two concerns live here, deliberately separated from the front end:

:class:`ModelPool`
    Keeps **one shared pre-trained bundle per distinct profile token**,
    LRU-bounded by ``max_models``.  Pre-trained weights depend only on the
    profile (see :func:`repro.experiments.common.profile_token`), so every
    request configuration against the same profile shares one model copy —
    the per-request state (sim config, RNG stream) is applied and undone
    around each execution by the scenario machinery, never baked into the
    pooled model.  Eviction also drops the bundle from
    :mod:`repro.experiments.common`'s module-level cache so memory is
    actually released.

:class:`ExecutionEngine`
    Runs one scenario at a time behind a per-process ``threading.Lock``.
    The lock is not an implementation shortcut — it serialises the
    **process-global** state a simulation touches: the compute-dtype policy
    (:mod:`repro.tensor.dtype`), the global RNG stream
    (:func:`repro.utils.seed.seed_everything`), and the shared pooled model
    itself.  Two scenarios interleaving on those would corrupt each other
    (see :class:`repro.sim.ConcurrentDtypeError` for the dtype half).

    Scale-out path: true parallel execution already exists in the runner's
    spawn-pool executor (:func:`repro.experiments.runner.executor.run_grid`
    with ``workers > 1``), where each worker process owns its own policy,
    RNG and model.  A multi-worker server dispatches to such a pool instead
    of calling :meth:`ExecutionEngine.execute` inline; the engine's lock
    then guards only the parent's occasional in-process executions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.experiments.common import evict_bundle, get_pretrained_bundle, profile_token
from repro.experiments.profiles import get_profile
from repro.experiments.runner.scenarios import execute_scenario
from repro.experiments.runner.spec import ScenarioSpec
from repro.tensor.dtype import compute_dtype_name, set_compute_dtype
from repro.utils.logging import get_logger

LOGGER = get_logger("repro.serve")


class ModelPool:
    """LRU-bounded cache of pre-trained bundles, keyed by profile token."""

    def __init__(
        self,
        max_models: int = 2,
        builder: Optional[Callable[[Any], Any]] = None,
    ):
        if max_models < 1:
            raise ValueError(f"max_models must be positive, got {max_models}")
        self.max_models = max_models
        # Injectable for tests (stub bundles instead of real pre-training).
        self._builder = builder or get_pretrained_bundle
        self._bundles: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    def bundle_for(self, spec: ScenarioSpec):
        """The shared pre-trained bundle for ``spec``'s resolved profile."""
        profile = get_profile(spec.profile).with_overrides(**spec.override_dict())
        token = profile_token(profile)
        with self._lock:
            if token in self._bundles:
                self._bundles.move_to_end(token)
                self.hits += 1
                return self._bundles[token]
        # Build outside the pool lock: pre-training/loading can take long and
        # must not block stats() or unrelated lookups.  The execution lock in
        # ExecutionEngine already serialises callers, so no duplicate build
        # races exist in practice; if one happens, last-in wins harmlessly
        # (both builds come from the same deterministic checkpoint).
        bundle = self._builder(profile)
        with self._lock:
            self._bundles[token] = bundle
            self._bundles.move_to_end(token)
            self.loads += 1
            while len(self._bundles) > self.max_models:
                evicted_token, _ = self._bundles.popitem(last=False)
                evict_bundle(evicted_token)
                self.evictions += 1
                LOGGER.info("model pool evicted bundle %s", evicted_token)
        return bundle

    def tokens(self) -> list:
        with self._lock:
            return list(self._bundles)

    def __len__(self) -> int:
        with self._lock:
            return len(self._bundles)

    def clear(self) -> None:
        with self._lock:
            for token in list(self._bundles):
                evict_bundle(token)
            self._bundles.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "models_loaded": self.loads,
                "model_hits": self.hits,
                "model_evictions": self.evictions,
                "models_resident": len(self._bundles),
            }


class ExecutionEngine:
    """Execute scenarios one at a time, leaving process state as found."""

    def __init__(self, pool: ModelPool, stage_store=None):
        self.pool = pool
        self.stage_store = stage_store
        #: THE execution lock: all process-global mutation (dtype policy,
        #: RNG seeding, pooled-model configuration) happens while held.
        self.lock = threading.Lock()

    def execute(self, spec: ScenarioSpec, needs_model: bool) -> Dict[str, Any]:
        """Run ``spec`` and return its raw result dict.

        The compute-dtype policy is snapshotted and restored around the run:
        scenario executors may legitimately switch it (``api_eval`` goes
        through a :class:`~repro.sim.Session`, which restores it itself, but
        the engine must not rely on every executor being that careful — the
        server's policy is no residue, ever.
        """
        with self.lock:
            saved_dtype = compute_dtype_name()
            try:
                bundle = self.pool.bundle_for(spec) if needs_model else None
                return execute_scenario(
                    spec, bundle=bundle, stage_store=self.stage_store
                )
            finally:
                set_compute_dtype(saved_dtype)
